#include "careweb/workload.h"

#include <algorithm>
#include <unordered_set>

#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "graph/user_graph.h"
#include "log/access_log.h"
#include "log/fake_log.h"

namespace eba {

StatusOr<LogSlice> AddLogSlice(Database* db, const std::string& source_log,
                               const std::string& name, int first_day,
                               int last_day, bool first_only) {
  EBA_ASSIGN_OR_RETURN(const Table* source, db->GetTable(source_log));
  EBA_ASSIGN_OR_RETURN(AccessLog log, AccessLog::Wrap(source));

  std::vector<size_t> rows = log.RowsInDayRange(first_day, last_day);
  if (first_only) {
    std::vector<uint8_t> mask = log.FirstAccessMask();
    std::vector<size_t> filtered;
    filtered.reserve(rows.size());
    for (size_t r : rows) {
      if (mask[r]) filtered.push_back(r);
    }
    rows = std::move(filtered);
  }

  EBA_ASSIGN_OR_RETURN(Table slice, log.MakeSlice(name, rows));
  LogSlice result;
  result.table = name;
  result.lids.reserve(rows.size());
  for (size_t r : rows) result.lids.push_back(log.Get(r).lid);
  std::sort(result.lids.begin(), result.lids.end());

  if (db->HasTable(name)) {
    EBA_RETURN_IF_ERROR(db->DropTable(name));
  }
  EBA_RETURN_IF_ERROR(db->AddTable(std::move(slice)));
  // Mirror the source log's self-join allowances (repeat-access mining).
  if (db->IsSelfJoinAllowed(AttrId{source_log, "Patient"})) {
    EBA_RETURN_IF_ERROR(db->AllowSelfJoin(AttrId{name, "Patient"}));
  }
  if (db->IsSelfJoinAllowed(AttrId{source_log, "User"})) {
    EBA_RETURN_IF_ERROR(db->AllowSelfJoin(AttrId{name, "User"}));
  }
  return result;
}

std::vector<std::string> LogLikeTables(const Database& db) {
  std::vector<std::string> out;
  for (const std::string& name : db.TableNames()) {
    const Table* table = db.GetTable(name).value();
    const TableSchema& schema = table->schema();
    if (schema.HasColumn("Lid") && schema.HasColumn("User") &&
        schema.HasColumn("Patient")) {
      out.push_back(name);
    }
  }
  return out;
}

std::vector<std::string> ExcludedLogsFor(const Database& db,
                                         const std::string& mining_log) {
  std::vector<std::string> out;
  for (const std::string& name : LogLikeTables(db)) {
    if (name != mining_log) out.push_back(name);
  }
  return out;
}

StatusOr<EvalLogSetup> AddEvalLog(Database* db,
                                  const std::string& real_slice_table,
                                  const std::string& name,
                                  const CareWebGroundTruth& truth,
                                  uint64_t seed) {
  EBA_ASSIGN_OR_RETURN(const Table* real, db->GetTable(real_slice_table));
  EBA_ASSIGN_OR_RETURN(AccessLog real_log, AccessLog::Wrap(real));

  Random rng(seed);
  FakeLogOptions options;
  options.num_accesses = real->num_rows();
  options.first_lid = 1'000'000'000;  // far above any organic lid
  options.min_time = real_log.MinTime();
  options.max_time = std::max(real_log.MaxTime(), options.min_time);
  EBA_ASSIGN_OR_RETURN(Table fake,
                       GenerateFakeLog(name + "_fake", truth.all_users,
                                       truth.all_patients, options, &rng));
  EBA_ASSIGN_OR_RETURN(CombinedLog combined,
                       CombineRealAndFake(name, *real, fake));

  if (db->HasTable(name)) {
    EBA_RETURN_IF_ERROR(db->DropTable(name));
  }
  EBA_RETURN_IF_ERROR(db->AddTable(std::move(combined.table)));
  // The repeat-access template needs self-joins on the combined table too.
  EBA_RETURN_IF_ERROR(db->AllowSelfJoin(AttrId{name, "Patient"}));
  EBA_RETURN_IF_ERROR(db->AllowSelfJoin(AttrId{name, "User"}));
  return EvalLogSetup{name, std::move(combined.real_lids),
                      std::move(combined.fake_lids)};
}

StatusOr<GroupHierarchy> BuildGroupsFromDays(
    Database* db, const std::string& source_log, int first_day, int last_day,
    const std::string& groups_table, const HierarchyOptions& options,
    bool include_depth_zero) {
  EBA_ASSIGN_OR_RETURN(const Table* source, db->GetTable(source_log));
  EBA_ASSIGN_OR_RETURN(AccessLog log, AccessLog::Wrap(source));
  std::vector<size_t> rows = log.RowsInDayRange(first_day, last_day);
  EBA_ASSIGN_OR_RETURN(UserGraph graph, UserGraph::BuildFromRows(log, rows));
  EBA_ASSIGN_OR_RETURN(GroupHierarchy hierarchy,
                       GroupHierarchy::Build(graph, options));
  EBA_ASSIGN_OR_RETURN(
      Table groups, hierarchy.ToGroupsTable(groups_table, include_depth_zero));
  if (db->HasTable(groups_table)) {
    EBA_RETURN_IF_ERROR(db->DropTable(groups_table));
  }
  EBA_RETURN_IF_ERROR(db->AddTable(std::move(groups)));
  EBA_RETURN_IF_ERROR(db->AllowSelfJoin(AttrId{groups_table, "Group_id"}));
  return hierarchy;
}

StatusOr<ExplanationTemplate> TemplateApptWithDoctor(const Database& db) {
  return ExplanationTemplate::Parse(
      db, "appt_with_doctor", "Log L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User",
      "[L.Patient] had an appointment with [L.User] on [A.Date]");
}

StatusOr<ExplanationTemplate> TemplateVisitWithDoctor(const Database& db) {
  return ExplanationTemplate::Parse(
      db, "visit_with_doctor", "Log L, Visits V",
      "L.Patient = V.Patient AND V.Doctor = L.User",
      "[L.Patient] had a visit with [L.User] on [V.Date]");
}

StatusOr<ExplanationTemplate> TemplateVisitWithAttending(const Database& db) {
  return ExplanationTemplate::Parse(
      db, "visit_with_attending", "Log L, Visits V",
      "L.Patient = V.Patient AND V.Attending = L.User",
      "[L.User] was the attending physician for [L.Patient]'s visit on "
      "[V.Date]");
}

StatusOr<ExplanationTemplate> TemplateDocumentWithAuthor(const Database& db) {
  return ExplanationTemplate::Parse(
      db, "document_with_author", "Log L, Documents D",
      "L.Patient = D.Patient AND D.Author = L.User",
      "[L.User] produced a document for [L.Patient] on [D.Date]");
}

StatusOr<ExplanationTemplate> TemplateRepeatAccess(const Database& db) {
  return ExplanationTemplate::Parse(
      db, "repeat_access", "Log L, Log L2",
      "L.Patient = L2.Patient AND L2.User = L.User AND L.Date > L2.Date",
      "[L.User] previously accessed [L.Patient]'s record (lid [L2.Lid])");
}

StatusOr<std::vector<ExplanationTemplate>> TemplatesDataSetB(
    const Database& db) {
  struct Spec {
    const char* name;
    const char* table;
    const char* column;
    const char* verb;
  };
  const Spec specs[] = {
      {"lab_ordered_by", "Labs", "Orderer", "ordered labs for"},
      {"lab_resulted_by", "Labs", "Resulter", "processed labs for"},
      {"med_requested_by", "Medications", "Requester",
       "requested medication for"},
      {"med_signed_by", "Medications", "Signer", "signed medication for"},
      {"med_administered_by", "Medications", "Administrator",
       "administered medication to"},
      {"radiology_ordered_by", "Radiology", "Orderer",
       "ordered imaging for"},
      {"radiology_read_by", "Radiology", "Radiologist", "read imaging for"},
  };
  std::vector<ExplanationTemplate> out;
  for (const auto& spec : specs) {
    EBA_ASSIGN_OR_RETURN(
        ExplanationTemplate tmpl,
        ExplanationTemplate::Parse(
            db, spec.name,
            StrFormat("Log L, %s B, UserMap M", spec.table),
            StrFormat("L.Patient = B.Patient AND B.%s = M.audit_id AND "
                      "M.caregiver_id = L.User",
                      spec.column),
            StrFormat("[L.User] %s [L.Patient] on [B.Date]", spec.verb)));
    out.push_back(std::move(tmpl));
  }
  return out;
}

StatusOr<std::vector<ExplanationTemplate>> TemplatesGroups(
    const Database& db, int depth, bool include_dataset_b) {
  struct Spec {
    const char* name;
    const char* table;
    const char* column;
    bool dataset_b;
  };
  const Spec specs[] = {
      {"group_appt", "Appointments", "Doctor", false},
      {"group_visit", "Visits", "Doctor", false},
      {"group_document", "Documents", "Author", false},
      {"group_lab", "Labs", "Orderer", true},
      {"group_med", "Medications", "Requester", true},
      {"group_radiology", "Radiology", "Orderer", true},
  };
  std::vector<ExplanationTemplate> out;
  for (const auto& spec : specs) {
    if (spec.dataset_b && !include_dataset_b) continue;
    std::string name = depth >= 0 ? StrFormat("%s_d%d", spec.name, depth)
                                  : std::string(spec.name);
    std::string from;
    std::string where;
    if (!spec.dataset_b) {
      from = StrFormat("Log L, %s E, Groups G1, Groups G2", spec.table);
      where = StrFormat(
          "L.Patient = E.Patient AND E.%s = G1.User AND "
          "G1.Group_id = G2.Group_id AND G2.User = L.User",
          spec.column);
    } else {
      from = StrFormat("Log L, %s E, UserMap M, Groups G1, Groups G2",
                       spec.table);
      where = StrFormat(
          "L.Patient = E.Patient AND E.%s = M.audit_id AND "
          "M.caregiver_id = G1.User AND G1.Group_id = G2.Group_id AND "
          "G2.User = L.User",
          spec.column);
    }
    if (depth >= 0) {
      where += StrFormat(" AND G1.Group_Depth = %d", depth);
    }
    EBA_ASSIGN_OR_RETURN(
        ExplanationTemplate tmpl,
        ExplanationTemplate::Parse(
            db, name, from, where,
            StrFormat("[L.Patient] had an event (%s) with [G1.User], who "
                      "works with [L.User]",
                      spec.table)));
    out.push_back(std::move(tmpl));
  }
  return out;
}

StatusOr<std::vector<ExplanationTemplate>> TemplatesSameDepartment(
    const Database& db) {
  struct Spec {
    const char* name;
    const char* table;
    const char* column;
  };
  const Spec specs[] = {
      {"dept_appt", "Appointments", "Doctor"},
      {"dept_visit", "Visits", "Doctor"},
      {"dept_document", "Documents", "Author"},
  };
  std::vector<ExplanationTemplate> out;
  for (const auto& spec : specs) {
    EBA_ASSIGN_OR_RETURN(
        ExplanationTemplate tmpl,
        ExplanationTemplate::Parse(
            db, spec.name, StrFormat("Log L, %s E, Users U1, Users U2", spec.table),
            StrFormat("L.Patient = E.Patient AND E.%s = U1.uid AND "
                      "U1.Department = U2.Department AND U2.uid = L.User",
                      spec.column),
            StrFormat("[L.Patient] had an event with [U1.uid], and [L.User] "
                      "works in the same department ([U1.Department])")));
    out.push_back(std::move(tmpl));
  }
  return out;
}

StatusOr<std::vector<ExplanationTemplate>> TemplatesHandcraftedDirect(
    const Database& db, bool include_repeat) {
  std::vector<ExplanationTemplate> out;
  EBA_ASSIGN_OR_RETURN(ExplanationTemplate appt, TemplateApptWithDoctor(db));
  out.push_back(std::move(appt));
  EBA_ASSIGN_OR_RETURN(ExplanationTemplate visit, TemplateVisitWithDoctor(db));
  out.push_back(std::move(visit));
  EBA_ASSIGN_OR_RETURN(ExplanationTemplate attending,
                       TemplateVisitWithAttending(db));
  out.push_back(std::move(attending));
  EBA_ASSIGN_OR_RETURN(ExplanationTemplate doc,
                       TemplateDocumentWithAuthor(db));
  out.push_back(std::move(doc));
  if (include_repeat) {
    EBA_ASSIGN_OR_RETURN(ExplanationTemplate repeat, TemplateRepeatAccess(db));
    out.push_back(std::move(repeat));
  }
  return out;
}

}  // namespace eba
