// Experiment scaffolding shared by the benchmark harnesses, examples and
// integration tests: log slicing (train days 1-6 / test day 7, first
// accesses), combined real+fake evaluation logs (§5.3.2), group building
// from a training window, and the paper's hand-crafted explanation
// templates (§5.3.1) expressed through the template parser.
//
// All template builders parse against the canonical "Log" table; rebind
// with ExplanationTemplate::WithLogTable (or let ExplanationEngine /
// MetricsEvaluator do it) to evaluate against a slice.

#ifndef EBA_CAREWEB_WORKLOAD_H_
#define EBA_CAREWEB_WORKLOAD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "careweb/generator.h"
#include "common/status.h"
#include "core/template.h"
#include "graph/hierarchy.h"
#include "storage/database.h"

namespace eba {

/// A log slice registered as its own table.
struct LogSlice {
  std::string table;
  std::vector<int64_t> lids;
};

/// Copies rows of `source_log` whose day index (1-based) lies in
/// [first_day, last_day] into a new table `name`. When `first_only` is set,
/// keeps only rows that are the first access of their (user, patient) pair
/// *within the full source log* (so "day-7 first accesses" means pairs first
/// seen on day 7). Log self-joins (Patient/User) are allowed on the new
/// table, mirroring the source log's configuration.
StatusOr<LogSlice> AddLogSlice(Database* db, const std::string& source_log,
                               const std::string& name, int first_day,
                               int last_day, bool first_only);

/// Tables that look like access logs (Lid + User + Patient columns).
std::vector<std::string> LogLikeTables(const Database& db);

/// Every log-like table except `mining_log` — pass as
/// MinerOptions::excluded_tables so paths never route through other slices.
std::vector<std::string> ExcludedLogsFor(const Database& db,
                                         const std::string& mining_log);

/// A combined real+fake evaluation log (§5.3.2): fake accesses sample users
/// and patients uniformly; |fake| = |real|.
struct EvalLogSetup {
  std::string table;
  std::vector<int64_t> real_lids;
  std::vector<int64_t> fake_lids;
};
StatusOr<EvalLogSetup> AddEvalLog(Database* db,
                                  const std::string& real_slice_table,
                                  const std::string& name,
                                  const CareWebGroundTruth& truth,
                                  uint64_t seed);

/// Builds collaborative groups from the given day range of `source_log`,
/// materializes `groups_table`, and allows its Group_id self-join.
/// `include_depth_zero` materializes the all-users depth-0 baseline group
/// too (needed only for Figure 12's depth-0 bar; keep it out when mining).
StatusOr<GroupHierarchy> BuildGroupsFromDays(
    Database* db, const std::string& source_log, int first_day, int last_day,
    const std::string& groups_table, const HierarchyOptions& options,
    bool include_depth_zero = false);

// --- Hand-crafted templates (§5.3.1); all against table "Log". ---

/// "[Patient] had an appointment with [User]" (explanation (A), §2.1).
StatusOr<ExplanationTemplate> TemplateApptWithDoctor(const Database& db);
/// Visit where the accessing user is the visit's doctor.
StatusOr<ExplanationTemplate> TemplateVisitWithDoctor(const Database& db);
/// Visit where the accessing user is the attending.
StatusOr<ExplanationTemplate> TemplateVisitWithAttending(const Database& db);
/// Document authored by the accessing user.
StatusOr<ExplanationTemplate> TemplateDocumentWithAuthor(const Database& db);
/// Repeat access: same user previously accessed the same record (decorated
/// with L.Date > L2.Date; explanation (C), §2.1).
StatusOr<ExplanationTemplate> TemplateRepeatAccess(const Database& db);

/// Data set B direct templates (Labs/Medications/Radiology user attributes,
/// reaching the log through the UserMap mapping table).
StatusOr<std::vector<ExplanationTemplate>> TemplatesDataSetB(
    const Database& db);

/// Group templates: patient had an event with someone in the accessing
/// user's collaborative group (Example 4.2). `depth` >= 0 decorates with
/// G1.Group_Depth = depth; depth < 0 uses all depths. Covers data set A
/// (and B when `include_dataset_b`).
StatusOr<std::vector<ExplanationTemplate>> TemplatesGroups(
    const Database& db, int depth, bool include_dataset_b);

/// Same-department templates (explanation (B), §2.1): the event's doctor
/// and the accessing user share a department code.
StatusOr<std::vector<ExplanationTemplate>> TemplatesSameDepartment(
    const Database& db);

/// The Figure 7 "All" set: direct data set A templates + repeat access.
StatusOr<std::vector<ExplanationTemplate>> TemplatesHandcraftedDirect(
    const Database& db, bool include_repeat);

}  // namespace eba

#endif  // EBA_CAREWEB_WORKLOAD_H_
