#include "careweb/generator.h"

#include <algorithm>
#include <unordered_set>

#include "common/date.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/string_util.h"
#include "log/access_log.h"

namespace eba {

namespace {

const char* kTeamNames[] = {
    "Cancer Center",        "Psychiatric Care",    "Cardiology",
    "Pediatrics",           "Emergency Medicine",  "Orthopedics",
    "Neurology",            "Obstetrics",          "Internal Medicine",
    "Family Medicine",      "Dermatology",         "Gastroenterology",
    "Pulmonology",          "Nephrology",          "Endocrinology",
    "Rheumatology",         "Urology",             "Ophthalmology",
    "Otolaryngology",       "Geriatrics",          "Infectious Disease",
    "Hematology",           "Vascular Surgery",    "General Surgery",
    "Plastic Surgery",      "Transplant",          "Rehabilitation",
    "Pain Management",      "Allergy",             "Sports Medicine",
    "Sleep Medicine",       "Palliative Care",     "Trauma Center"};

const char* kSharedDepts[] = {"Medical Students", "Social Work",
                              "Central Staffing Resources",
                              "Clinical Trials Office", "Physician Services"};

const char* kConsultServices[] = {"Radiology", "Pathology", "Pharmacy",
                                  "Labs"};

const char* kActions[] = {"viewed record", "viewed labs", "viewed notes",
                          "updated history", "viewed medications"};

// One day's worth of staged accesses. Action and reason are static string
// literals, so a pending access is a flat 40-byte record — the staging
// buffer for even the busiest generated day stays a few tens of MB, and
// the log streams into the chunked table day by day instead of being held
// whole as boxed rows.
struct PendingAccess {
  int64_t time = 0;
  int64_t user = 0;
  int64_t patient = 0;
  const char* action = nullptr;
  const char* reason = nullptr;
};

/// (user, patient) packed into one hash-set key; both ids are generated
/// sequentially from 1 and stay far below 2^32 at any supported scale.
uint64_t PackPair(int64_t user, int64_t patient) {
  return (static_cast<uint64_t>(user) << 32) |
         static_cast<uint64_t>(patient);
}

struct TeamState {
  CareWebGroundTruth::Team truth;
  std::vector<int64_t> nurses;
  std::vector<int64_t> patients;  // patients assigned to this team
};

Status CreateSchema(Database* db) {
  EBA_RETURN_IF_ERROR(db->CreateTable(TableSchema(
      "Users", {ColumnDef{"uid", DataType::kInt64, "user", true},
                ColumnDef{"Name", DataType::kString, "", false},
                ColumnDef{"Department", DataType::kString, "dept", false},
                ColumnDef{"Role", DataType::kString, "", false}})));
  EBA_RETURN_IF_ERROR(db->CreateTable(TableSchema(
      "Patients", {ColumnDef{"pid", DataType::kInt64, "patient", true},
                   ColumnDef{"Name", DataType::kString, "", false}})));
  EBA_RETURN_IF_ERROR(db->CreateTable(TableSchema(
      "Appointments", {ColumnDef{"Patient", DataType::kInt64, "patient", false},
                       ColumnDef{"Date", DataType::kTimestamp, "", false},
                       ColumnDef{"Doctor", DataType::kInt64, "user", false}})));
  EBA_RETURN_IF_ERROR(db->CreateTable(TableSchema(
      "Visits", {ColumnDef{"Patient", DataType::kInt64, "patient", false},
                 ColumnDef{"Date", DataType::kTimestamp, "", false},
                 ColumnDef{"Doctor", DataType::kInt64, "user", false},
                 ColumnDef{"Attending", DataType::kInt64, "user", false}})));
  EBA_RETURN_IF_ERROR(db->CreateTable(TableSchema(
      "Documents", {ColumnDef{"Patient", DataType::kInt64, "patient", false},
                    ColumnDef{"Date", DataType::kTimestamp, "", false},
                    ColumnDef{"Author", DataType::kInt64, "user", false},
                    ColumnDef{"Signer", DataType::kInt64, "user", false},
                    ColumnDef{"Enterer", DataType::kInt64, "user", false}})));
  EBA_RETURN_IF_ERROR(db->CreateTable(TableSchema(
      "Labs", {ColumnDef{"Patient", DataType::kInt64, "patient", false},
               ColumnDef{"Date", DataType::kTimestamp, "", false},
               ColumnDef{"Orderer", DataType::kInt64, "audit", false},
               ColumnDef{"Resulter", DataType::kInt64, "audit", false}})));
  EBA_RETURN_IF_ERROR(db->CreateTable(TableSchema(
      "Medications",
      {ColumnDef{"Patient", DataType::kInt64, "patient", false},
       ColumnDef{"Date", DataType::kTimestamp, "", false},
       ColumnDef{"Requester", DataType::kInt64, "audit", false},
       ColumnDef{"Signer", DataType::kInt64, "audit", false},
       ColumnDef{"Administrator", DataType::kInt64, "audit", false}})));
  EBA_RETURN_IF_ERROR(db->CreateTable(TableSchema(
      "Radiology",
      {ColumnDef{"Patient", DataType::kInt64, "patient", false},
       ColumnDef{"Date", DataType::kTimestamp, "", false},
       ColumnDef{"Orderer", DataType::kInt64, "audit", false},
       ColumnDef{"Radiologist", DataType::kInt64, "audit", false}})));
  EBA_RETURN_IF_ERROR(db->CreateTable(TableSchema(
      "UserMap", {ColumnDef{"caregiver_id", DataType::kInt64, "user", false},
                  ColumnDef{"audit_id", DataType::kInt64, "audit", false}})));
  EBA_RETURN_IF_ERROR(db->CreateTable(AccessLog::StandardSchema("Log")));
  EBA_RETURN_IF_ERROR(db->MarkMappingTable("UserMap"));
  // Mining self-joins per §5.3.3: the department code attribute (and
  // Groups.Group_id once groups are built). The Log deliberately has no
  // self-join allowance: an undecorated Log-Log path is tautologically true
  // for every access (each row matches itself), so the repeat-access
  // explanation exists only as a hand-crafted *decorated* template
  // (L.Date > L2.Date), exactly as in the paper.
  EBA_RETURN_IF_ERROR(db->AllowSelfJoin(AttrId{"Users", "Department"}));
  return Status::OK();
}

}  // namespace

std::vector<std::pair<std::string, std::string>> DataSetAEventTables() {
  return {{"Appointments", "Patient"},
          {"Visits", "Patient"},
          {"Documents", "Patient"}};
}

std::vector<std::pair<std::string, std::string>> DataSetBEventTables() {
  return {{"Labs", "Patient"},
          {"Medications", "Patient"},
          {"Radiology", "Patient"}};
}

std::vector<std::pair<std::string, std::string>> AllEventTables() {
  auto a = DataSetAEventTables();
  auto b = DataSetBEventTables();
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

StatusOr<CareWebData> GenerateCareWeb(const CareWebConfig& cfg) {
  if (cfg.num_teams <= 0 || cfg.num_patients <= 0 || cfg.num_days <= 0) {
    return Status::InvalidArgument("config cardinalities must be positive");
  }
  Random rng(cfg.seed);
  CareWebData data;
  data.config = cfg;
  Database& db = data.db;
  CareWebGroundTruth& truth = data.truth;
  EBA_RETURN_IF_ERROR(CreateSchema(&db));

  Table* users = db.GetTable("Users").value();
  Table* patients = db.GetTable("Patients").value();
  Table* appointments = db.GetTable("Appointments").value();
  Table* visits = db.GetTable("Visits").value();
  Table* documents = db.GetTable("Documents").value();
  Table* labs = db.GetTable("Labs").value();
  Table* medications = db.GetTable("Medications").value();
  Table* radiology = db.GetTable("Radiology").value();
  Table* user_map = db.GetTable("UserMap").value();
  Table* log_table = db.GetTable("Log").value();

  int64_t next_uid = 1;
  auto add_user = [&](const std::string& name_prefix,
                      const std::string& dept,
                      const std::string& role) -> StatusOr<int64_t> {
    int64_t uid = next_uid++;
    EBA_RETURN_IF_ERROR(users->AppendRow(
        {Value::Int64(uid),
         Value::String(StrFormat("%s %lld", name_prefix.c_str(),
                                 static_cast<long long>(uid))),
         Value::String(dept), Value::String(role)}));
    truth.all_users.push_back(uid);
    return uid;
  };

  // --- Teams: doctors + nurses + shared-pool support staff. ---
  std::vector<TeamState> teams(static_cast<size_t>(cfg.num_teams));
  const int num_base_names =
      static_cast<int>(sizeof(kTeamNames) / sizeof(kTeamNames[0]));
  for (int t = 0; t < cfg.num_teams; ++t) {
    TeamState& team = teams[static_cast<size_t>(t)];
    team.truth.team_id = t;
    team.truth.name =
        t < num_base_names
            ? kTeamNames[t]
            : StrFormat("Specialty Clinic %d", t - num_base_names + 1);
    std::string phys_dept = "UMHS " + team.truth.name + " (Physicians)";
    std::string nurse_dept = "Nursing - " + team.truth.name;
    team.truth.dept_codes = {phys_dept, nurse_dept};

    int n_doctors = static_cast<int>(rng.UniformRange(
        cfg.doctors_per_team_min, cfg.doctors_per_team_max));
    for (int i = 0; i < n_doctors; ++i) {
      EBA_ASSIGN_OR_RETURN(int64_t uid,
                           add_user("Dr", phys_dept, "physician"));
      team.truth.doctors.push_back(uid);
      team.truth.members.push_back(uid);
    }
    int n_nurses = static_cast<int>(
        rng.UniformRange(cfg.nurses_per_team_min, cfg.nurses_per_team_max));
    for (int i = 0; i < n_nurses; ++i) {
      EBA_ASSIGN_OR_RETURN(int64_t uid, add_user("Nurse", nurse_dept, "nurse"));
      team.nurses.push_back(uid);
      team.truth.members.push_back(uid);
    }
    int n_support = static_cast<int>(rng.UniformRange(
        cfg.support_per_team_min, cfg.support_per_team_max));
    for (int i = 0; i < n_support; ++i) {
      const char* dept = kSharedDepts[rng.Uniform(
          sizeof(kSharedDepts) / sizeof(kSharedDepts[0]))];
      EBA_ASSIGN_OR_RETURN(int64_t uid, add_user("Staff", dept, "support"));
      team.truth.members.push_back(uid);
      if (std::find(team.truth.dept_codes.begin(), team.truth.dept_codes.end(),
                    dept) == team.truth.dept_codes.end()) {
        team.truth.dept_codes.push_back(dept);
      }
    }
  }
  // Medical students rotate: each is attached to one team this week.
  for (int i = 0; i < cfg.num_medical_students; ++i) {
    EBA_ASSIGN_OR_RETURN(int64_t uid,
                         add_user("Student", "Medical Students", "student"));
    TeamState& team = teams[rng.Uniform(teams.size())];
    team.truth.members.push_back(uid);
    if (std::find(team.truth.dept_codes.begin(), team.truth.dept_codes.end(),
                  "Medical Students") == team.truth.dept_codes.end()) {
      team.truth.dept_codes.push_back("Medical Students");
    }
  }
  // Consult services.
  std::vector<std::vector<int64_t>> consult_pools;
  for (const char* service : kConsultServices) {
    std::vector<int64_t> pool;
    for (int i = 0; i < cfg.users_per_consult_service; ++i) {
      EBA_ASSIGN_OR_RETURN(int64_t uid, add_user("Tech", service, "consult"));
      pool.push_back(uid);
      truth.consult_users.push_back(uid);
    }
    consult_pools.push_back(std::move(pool));
  }

  // Audit-id mapping (data set B identifies users by audit id).
  for (int64_t uid : truth.all_users) {
    EBA_RETURN_IF_ERROR(user_map->AppendRow(
        {Value::Int64(uid), Value::Int64(uid + cfg.audit_id_offset)}));
  }
  auto audit = [&](int64_t uid) { return uid + cfg.audit_id_offset; };

  // --- Patients, assigned to teams with skewed popularity. ---
  for (int64_t pid = 1; pid <= cfg.num_patients; ++pid) {
    EBA_RETURN_IF_ERROR(patients->AppendRow(
        {Value::Int64(pid),
         Value::String(StrFormat("Patient %lld",
                                 static_cast<long long>(pid)))}));
    truth.all_patients.push_back(pid);
    size_t team_idx = rng.Zipf(teams.size(), 0.5);
    teams[team_idx].patients.push_back(pid);
    truth.patient_team.emplace(pid, static_cast<int>(team_idx));
  }
  // Guarantee each team has at least one patient.
  for (size_t t = 0; t < teams.size(); ++t) {
    if (teams[t].patients.empty()) {
      int64_t pid =
          truth.all_patients[rng.Uniform(truth.all_patients.size())];
      teams[t].patients.push_back(pid);
    }
  }

  // --- Events and accesses, day by day, streamed into the log. ---
  // Every access generated on day d carries a timestamp in
  // [day_start + 8h, day_start + 26h) (the latest offset any push adds to
  // an in-day event time is 8h), and day d+1 starts at day_start + 32h —
  // day time ranges are disjoint and ordered. Sorting each day's buffer and
  // flushing it to the log immediately therefore produces the exact
  // sequence a whole-log stable sort would: the staging footprint is one
  // day, not O(log), which is what lets the generator stream tens of
  // millions of rows in bounded memory.
  std::vector<PendingAccess> day_accesses;
  std::vector<std::pair<int64_t, int64_t>> known_pairs;  // (user, patient)
  std::unordered_set<uint64_t> pair_set;  // PackPair keys; membership only
  int64_t next_lid = 1;

  Date start = Date::FromCivil(cfg.start_year, cfg.start_month, cfg.start_day);

  auto random_action = [&]() -> const char* {
    return kActions[rng.Uniform(sizeof(kActions) / sizeof(kActions[0]))];
  };
  auto push_access = [&](int64_t time, int64_t user, int64_t patient,
                         const char* reason) {
    day_accesses.push_back(
        PendingAccess{time, user, patient, random_action(), reason});
  };

  for (int day = 0; day < cfg.num_days; ++day) {
    const int64_t day_start = start.AddDays(day).ToSeconds();
    auto time_in_day = [&]() {
      return day_start + 8 * 3600 +
             static_cast<int64_t>(rng.Uniform(10 * 3600));
    };
    const size_t pairs_before_today = known_pairs.size();
    day_accesses.clear();

    for (TeamState& team : teams) {
      if (team.truth.doctors.empty()) continue;
      uint64_t n_appts = rng.Poisson(cfg.appointments_per_team_per_day);
      for (uint64_t a = 0; a < n_appts; ++a) {
        int64_t patient =
            team.patients[rng.Zipf(team.patients.size(), 0.6)];
        int64_t doctor = rng.Choice(team.truth.doctors);
        int64_t t0 = time_in_day();
        bool missing = rng.Bernoulli(cfg.missing_event_prob);
        const char* base_reason = missing ? "missing_event" : "";

        if (!missing) {
          EBA_RETURN_IF_ERROR(appointments->AppendRow(
              {Value::Int64(patient), Value::Timestamp(t0),
               Value::Int64(doctor)}));
        }
        if (rng.Bernoulli(cfg.doctor_access_prob)) {
          push_access(t0 + static_cast<int64_t>(rng.Uniform(600)), doctor,
                      patient, missing ? base_reason : "appt_doctor");
        }
        // Team members (nurses, students, support) work the chart; the
        // appointment references only the doctor — this is the §4 missing
        // data phenomenon.
        int n_team = static_cast<int>(rng.UniformRange(
            cfg.team_accessors_min, cfg.team_accessors_max));
        std::vector<size_t> picks = rng.SampleWithoutReplacement(
            team.truth.members.size(),
            std::min<size_t>(static_cast<size_t>(n_team),
                             team.truth.members.size()));
        for (size_t pick : picks) {
          int64_t member = team.truth.members[pick];
          if (member == doctor) continue;
          if (rng.Bernoulli(cfg.team_member_access_prob)) {
            push_access(t0 + static_cast<int64_t>(rng.Uniform(4 * 3600)),
                        member, patient,
                        missing ? base_reason : "team");
          }
        }
        if (!missing && rng.Bernoulli(cfg.visit_prob)) {
          int64_t attending = rng.Choice(team.truth.doctors);
          EBA_RETURN_IF_ERROR(visits->AppendRow(
              {Value::Int64(patient), Value::Timestamp(t0),
               Value::Int64(doctor), Value::Int64(attending)}));
          if (attending != doctor &&
              rng.Bernoulli(cfg.attending_access_prob)) {
            push_access(t0 + static_cast<int64_t>(rng.Uniform(2 * 3600)),
                        attending, patient, "attending");
          }
        }
        if (!missing) {
          uint64_t n_docs = rng.Poisson(cfg.documents_per_appointment);
          for (uint64_t d = 0; d < n_docs; ++d) {
            int64_t author = rng.Choice(team.truth.members);
            int64_t enterer = rng.Choice(team.truth.members);
            EBA_RETURN_IF_ERROR(documents->AppendRow(
                {Value::Int64(patient), Value::Timestamp(t0),
                 Value::Int64(author), Value::Int64(doctor),
                 Value::Int64(enterer)}));
            if (rng.Bernoulli(0.6)) {
              push_access(t0 + static_cast<int64_t>(rng.Uniform(3 * 3600)),
                          author, patient, "document");
            }
          }
        }
        // Consult orders (data set B). Orders are recorded even when the
        // appointment extract is missing — independent systems.
        if (rng.Bernoulli(cfg.lab_order_prob)) {
          int64_t tech = rng.Choice(consult_pools[3]);  // Labs
          EBA_RETURN_IF_ERROR(labs->AppendRow(
              {Value::Int64(patient), Value::Timestamp(t0),
               Value::Int64(audit(doctor)), Value::Int64(audit(tech))}));
          if (rng.Bernoulli(cfg.consult_access_prob)) {
            push_access(t0 + static_cast<int64_t>(rng.Uniform(6 * 3600)),
                        tech, patient, "consult_lab");
          }
        }
        if (rng.Bernoulli(cfg.medication_order_prob)) {
          int64_t pharmacist = rng.Choice(consult_pools[2]);  // Pharmacy
          int64_t administrator =
              team.nurses.empty() ? doctor : rng.Choice(team.nurses);
          EBA_RETURN_IF_ERROR(medications->AppendRow(
              {Value::Int64(patient), Value::Timestamp(t0),
               Value::Int64(audit(doctor)), Value::Int64(audit(pharmacist)),
               Value::Int64(audit(administrator))}));
          if (rng.Bernoulli(cfg.consult_access_prob)) {
            push_access(t0 + static_cast<int64_t>(rng.Uniform(6 * 3600)),
                        pharmacist, patient, "consult_med");
          }
        }
        if (rng.Bernoulli(cfg.radiology_order_prob)) {
          int64_t radiologist = rng.Choice(consult_pools[0]);  // Radiology
          EBA_RETURN_IF_ERROR(radiology->AppendRow(
              {Value::Int64(patient), Value::Timestamp(t0),
               Value::Int64(audit(doctor)), Value::Int64(audit(radiologist))}));
          if (rng.Bernoulli(cfg.consult_access_prob)) {
            push_access(t0 + static_cast<int64_t>(rng.Uniform(8 * 3600)),
                        radiologist, patient, "consult_rad");
          }
        }
      }
    }

    // Repeat accesses over pairs established before today.
    for (size_t i = 0; i < pairs_before_today; ++i) {
      if (rng.Bernoulli(cfg.repeat_access_prob)) {
        push_access(time_in_day(), known_pairs[i].first,
                    known_pairs[i].second, "repeat");
      }
    }

    // Random, unexplainable accesses (snooping-like).
    size_t organic_today = day_accesses.size();
    uint64_t n_random = rng.Poisson(
        cfg.random_access_rate * static_cast<double>(organic_today));
    for (uint64_t i = 0; i < n_random; ++i) {
      int64_t user = truth.all_users[rng.Uniform(truth.all_users.size())];
      int64_t patient =
          truth.all_patients[rng.Uniform(truth.all_patients.size())];
      push_access(time_in_day(), user, patient, "random");
    }

    // Register today's new pairs.
    for (const PendingAccess& access : day_accesses) {
      if (pair_set.insert(PackPair(access.user, access.patient)).second) {
        known_pairs.emplace_back(access.user, access.patient);
      }
    }

    // Flush: sort today's accesses and stream them into the chunked log
    // with sequential lids. Disjoint day time ranges make the result
    // byte-identical to sorting the whole log at the end.
    std::stable_sort(day_accesses.begin(), day_accesses.end(),
                     [](const PendingAccess& a, const PendingAccess& b) {
                       return a.time < b.time;
                     });
    for (const PendingAccess& access : day_accesses) {
      int64_t lid = next_lid++;
      EBA_RETURN_IF_ERROR(log_table->AppendRow(
          {Value::Int64(lid), Value::Timestamp(access.time),
           Value::Int64(access.user), Value::Int64(access.patient),
           Value::String(access.action)}));
      if (cfg.track_access_reasons) {
        truth.access_reason.emplace(lid, access.reason);
      }
    }
  }

  for (TeamState& team : teams) {
    truth.teams.push_back(std::move(team.truth));
  }
  return data;
}

}  // namespace eba
