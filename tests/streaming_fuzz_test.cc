// Streaming differential fuzz: seeded randomized interleavings of log
// appends (in-order backlog replay plus synthesized, possibly out-of-order
// and duplicate-lid accesses), foreign-table appends (joinable and
// garbage), structural mutations, audit resets, and ExplainNew calls. After
// every audit step the auditor's accumulated state is differentially
// checked against a fresh Engine::ExplainAll on a CLONED database — a fully
// independent oracle sharing no tables, indexes, or plan caches with the
// system under test. The same op sequence runs at thread counts {1, 4} and
// must produce byte-identical reports (the streaming analogue of
// executor_equivalence_test's random-query oracle).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "careweb/generator.h"
#include "careweb/workload.h"
#include "common/random.h"
#include "core/engine.h"
#include "core/ingest.h"
#include "log/access_log.h"
#include "storage/io.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::CloneDatabase;
using testing_util::UnwrapOrDie;

void Must(const Status& s) { EBA_CHECK_MSG(s.ok(), s.ToString()); }

/// Compact, order-sensitive digest of a report for cross-thread-count
/// comparison.
std::string Digest(const StreamingReport& r) {
  auto lids = [](const std::vector<int64_t>& v) {
    std::string s;
    for (int64_t lid : v) {
      s += std::to_string(lid);
      s += ',';
    }
    return s;
  };
  std::string d;
  d += std::to_string(r.audited_from) + ":" + std::to_string(r.audited_to);
  d += r.full_reaudit ? "F" : "-";
  d += "|e" + lids(r.explained_lids);
  d += "|u" + lids(r.unexplained_lids);
  d += "|d" + lids(r.delta_explained_lids);
  for (size_t c : r.per_template_counts) d += ";" + std::to_string(c);
  for (size_t c : r.per_template_delta_counts) d += "+" + std::to_string(c);
  return d;
}

struct FuzzFixture {
  CareWebData data;
  std::vector<Row> backlog;
  std::vector<ExplanationTemplate> templates;
  std::unique_ptr<StreamingAuditor> auditor;
  int64_t min_time = 0;
  int64_t max_time = 0;
  int64_t next_lid = 0;
};

FuzzFixture MakeFuzzFixture() {
  FuzzFixture f;
  f.data = UnwrapOrDie(GenerateCareWeb(CareWebConfig::Tiny()));
  const Table* log = UnwrapOrDie(f.data.db.GetTable("Log"));
  AccessLog source = UnwrapOrDie(AccessLog::Wrap(log));
  (void)UnwrapOrDie(AddLogSlice(&f.data.db, "Log", "LogStream", 1, 2,
                                /*first_only=*/false));
  std::unordered_set<size_t> seeded;
  for (size_t r : source.RowsInDayRange(1, 2)) seeded.insert(r);
  for (size_t r = 0; r < log->num_rows(); ++r) {
    if (!seeded.count(r)) f.backlog.push_back(log->GetRow(r));
    f.next_lid = std::max(f.next_lid, source.Get(r).lid + 1);
  }
  f.min_time = source.MinTime();
  f.max_time = source.MaxTime();
  f.templates = UnwrapOrDie(TemplatesHandcraftedDirect(f.data.db, true));
  f.auditor = std::make_unique<StreamingAuditor>(
      UnwrapOrDie(StreamingAuditor::Create(&f.data.db, "LogStream")));
  for (const auto& tmpl : f.templates) Must(f.auditor->AddTemplate(tmpl));
  return f;
}

/// The differential oracle: every audited lid's explained/unexplained
/// classification must match a fresh full ExplainAll on a cloned database.
void CheckAgainstClonedOracle(const Database& db,
                              const std::vector<ExplanationTemplate>& templates,
                              const StreamingAuditor& auditor, size_t step) {
  Database clone = CloneDatabase(db);
  ExplanationEngine oracle =
      UnwrapOrDie(ExplanationEngine::Create(&clone, "LogStream"));
  for (const auto& tmpl : templates) Must(oracle.AddTemplate(tmpl));
  const ExplanationReport full = UnwrapOrDie(oracle.ExplainAll());
  const std::unordered_set<int64_t> full_explained(full.explained_lids.begin(),
                                                   full.explained_lids.end());
  const Table* stream =
      UnwrapOrDie(static_cast<const Database&>(db).GetTable("LogStream"));
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(stream));
  ASSERT_LE(auditor.audited_rows(), stream->num_rows());
  size_t mismatches = 0;
  for (size_t r = 0; r < auditor.audited_rows() && mismatches < 5; ++r) {
    const int64_t lid = log.Get(r).lid;
    const bool streamed = auditor.IsExplained(lid);
    const bool expected = full_explained.count(lid) > 0;
    if (streamed != expected) {
      ++mismatches;
      ADD_FAILURE() << "step " << step << " row " << r << " lid " << lid
                    << ": streaming says "
                    << (streamed ? "explained" : "unexplained")
                    << ", cloned-oracle ExplainAll says "
                    << (expected ? "explained" : "unexplained");
    }
  }
}

/// Runs `steps` random ops from `seed` at `num_threads`, returning one
/// digest per audit. EXPECT-fails on any oracle divergence.
std::vector<std::string> RunFuzz(uint64_t seed, size_t steps,
                                 size_t num_threads) {
  FuzzFixture f = MakeFuzzFixture();
  Random rng(seed);
  StreamingOptions options;
  options.num_threads = num_threads;
  options.min_rows_per_shard = 1;
  options.executor.min_rows_per_morsel = 1;

  const std::vector<std::string> foreign_tables = {"Appointments", "Visits",
                                                   "Documents"};
  size_t backlog_pos = 0;
  bool expect_full = false;
  std::vector<std::string> digests;

  auto audit = [&](size_t step) {
    const StreamingReport report = UnwrapOrDie(f.auditor->ExplainNew(options));
    EXPECT_EQ(report.full_reaudit, expect_full) << "step " << step;
    expect_full = false;
    // The delta pass reports only retroactive flips: disjoint from the
    // new-lid partition by construction.
    for (int64_t lid : report.delta_explained_lids) {
      EXPECT_FALSE(std::binary_search(report.explained_lids.begin(),
                                      report.explained_lids.end(), lid));
      EXPECT_FALSE(std::binary_search(report.unexplained_lids.begin(),
                                      report.unexplained_lids.end(), lid));
    }
    digests.push_back(Digest(report));
    CheckAgainstClonedOracle(f.data.db, f.templates, *f.auditor, step);
  };

  auto synth_access = [&]() {
    Row row(5);
    // ~8% duplicate lids; otherwise fresh. Dates are drawn across the whole
    // log span, so late-arriving EARLIER accesses occur — exercising the
    // self-join retroactive-explanation path.
    row[0] = Value::Int64(rng.Bernoulli(0.08)
                              ? rng.UniformRange(1, f.next_lid - 1)
                              : f.next_lid++);
    row[1] = Value::Timestamp(rng.UniformRange(f.min_time, f.max_time));
    row[2] = Value::Int64(rng.Choice(f.data.truth.all_users));
    row[3] = Value::Int64(rng.Choice(f.data.truth.all_patients));
    row[4] = Value::String("fuzz");
    return row;
  };

  for (size_t step = 0; step < steps; ++step) {
    const size_t op = rng.WeightedIndex({30, 25, 35, 5, 5});
    switch (op) {
      case 0: {  // log append: in-order backlog replay mixed with
                 // synthesized (out-of-order, sometimes duplicate-lid) rows
        const size_t k = rng.Uniform(9);  // 0 = empty batch
        std::vector<Row> batch;
        for (size_t i = 0; i < k; ++i) {
          if (backlog_pos < f.backlog.size() && rng.Bernoulli(0.6)) {
            batch.push_back(f.backlog[backlog_pos++]);
          } else {
            batch.push_back(synth_access());
          }
        }
        Must(f.auditor->AppendAccessBatch(batch));
        break;
      }
      case 1: {  // foreign-table append
        const std::string& table = rng.Choice(foreign_tables);
        const Table* stream =
            UnwrapOrDie(static_cast<const Database&>(f.data.db)
                            .GetTable("LogStream"));
        AccessLog log = UnwrapOrDie(AccessLog::Wrap(stream));
        const size_t cols = UnwrapOrDie(static_cast<const Database&>(f.data.db)
                                            .GetTable(table))
                                ->num_columns();
        const size_t k = 1 + rng.Uniform(3);
        std::vector<Row> rows;
        for (size_t i = 0; i < k; ++i) {
          int64_t patient, user, when;
          if (stream->num_rows() > 0 && rng.Bernoulli(0.7)) {
            // Joinable: witness a random existing (possibly already
            // audited) access.
            const AccessLog::Entry e =
                log.Get(rng.Uniform(stream->num_rows()));
            patient = e.patient;
            user = e.user;
            when = e.time - static_cast<int64_t>(rng.Uniform(3600));
          } else {
            patient = 900000 + static_cast<int64_t>(rng.Uniform(1000));
            user = 900000 + static_cast<int64_t>(rng.Uniform(1000));
            when = rng.UniformRange(f.min_time, f.max_time);
          }
          Row row(cols);
          row[0] = Value::Int64(patient);
          row[1] = Value::Timestamp(when);
          for (size_t c = 2; c < cols; ++c) row[c] = Value::Int64(user);
          rows.push_back(std::move(row));
        }
        if (rng.Bernoulli(0.5)) {
          Must(f.auditor->AppendRows(table, rows));
        } else {
          // Appends behind the auditor's back are equivalent: drift is
          // classified from the watermark snapshot, not the call site.
          Table* t = f.data.db.GetTable(table).value();
          for (const Row& row : rows) Must(t->AppendRow(row));
        }
        break;
      }
      case 2:  // audit + differential check
        audit(step);
        break;
      case 3: {  // structural mutation: epoch bump, identical data
        const std::string& table = rng.Bernoulli(0.5)
                                       ? foreign_tables[rng.Uniform(
                                             foreign_tables.size())]
                                       : std::string("LogStream");
        static_cast<const Database&>(f.data.db)
            .GetTable(table)
            .value()
            ->InvalidateDerivedState();
        expect_full = true;
        break;
      }
      case 4:  // audit reset: not drift, just forgets
        f.auditor->ResetAudit();
        break;
    }
  }
  audit(steps);  // closing audit so every interleaving ends checked
  return digests;
}

// --- Seeded crash-at-step-k mode ------------------------------------------

struct CrashOp {
  enum Kind { kLogAppend, kForeignAppend, kAudit };
  Kind kind;
  std::string table;      // kForeignAppend only
  std::vector<Row> rows;  // append ops only
};

/// Materializes a seeded random schedule as data, so the pre-crash prefix
/// and the post-recovery suffix execute the exact same ops for every kill
/// point k. Log appends replay the backlog in order; foreign appends
/// witness a random backlog access (joinable by construction).
std::vector<CrashOp> MakeCrashSchedule(uint64_t seed, size_t steps,
                                       const FuzzFixture& f) {
  Random rng(seed);
  const std::vector<std::string> foreign_tables = {"Appointments", "Visits",
                                                   "Documents"};
  std::vector<CrashOp> ops;
  size_t backlog_pos = 0;
  for (size_t step = 0; step < steps; ++step) {
    switch (rng.WeightedIndex({40, 25, 35})) {
      case 0: {
        CrashOp op;
        op.kind = CrashOp::kLogAppend;
        const size_t k = 1 + rng.Uniform(4);
        for (size_t i = 0; i < k && backlog_pos < f.backlog.size(); ++i) {
          op.rows.push_back(f.backlog[backlog_pos++]);
        }
        ops.push_back(std::move(op));
        break;
      }
      case 1: {
        CrashOp op;
        op.kind = CrashOp::kForeignAppend;
        op.table = rng.Choice(foreign_tables);
        const size_t cols =
            UnwrapOrDie(
                static_cast<const Database&>(f.data.db).GetTable(op.table))
                ->num_columns();
        const Row& src = f.backlog[rng.Uniform(f.backlog.size())];
        Row row(cols);
        row[0] = src[3];                                 // patient
        row[1] = src[1];                                 // time
        for (size_t c = 2; c < cols; ++c) row[c] = src[2];  // user
        op.rows.push_back(std::move(row));
        ops.push_back(std::move(op));
        break;
      }
      case 2:
        ops.push_back(CrashOp{CrashOp::kAudit, "", {}});
        break;
    }
  }
  ops.push_back(CrashOp{CrashOp::kAudit, "", {}});  // closing audit
  return ops;
}

void ApplyCrashOp(StreamingAuditor* auditor, const CrashOp& op,
                  const StreamingOptions& options) {
  switch (op.kind) {
    case CrashOp::kLogAppend:
      Must(auditor->AppendAccessBatch(op.rows));
      break;
    case CrashOp::kForeignAppend:
      Must(auditor->AppendRows(op.table, op.rows));
      break;
    case CrashOp::kAudit:
      (void)UnwrapOrDie(auditor->ExplainNew(options));
      break;
  }
}

TEST(StreamingFuzzTest, CrashAtEveryStepRecoversAndFinishesSchedule) {
  const uint64_t kSeed = 20110930;
  const size_t kSteps = 12;
  const std::string dir = ::testing::TempDir() + "/fuzz_crash_recover";
  StreamingOptions options;
  options.min_rows_per_shard = 1;
  options.executor.min_rows_per_morsel = 1;
  DurabilityOptions dopts;
  dopts.dir = dir;
  dopts.sync = WalSync::kNone;
  dopts.checkpoint_after_wal_bytes = 1024;  // auto-checkpoints mid-schedule
  dopts.full_checkpoint_interval = 2;

  const FuzzFixture rows_source = MakeFuzzFixture();
  const std::vector<CrashOp> ops = MakeCrashSchedule(kSeed, kSteps,
                                                     rows_source);

  for (size_t k = 0; k <= ops.size(); ++k) {
    Must(RealEnv()->RemoveAll(dir));
    {
      FuzzFixture f = MakeFuzzFixture();
      Must(f.auditor->EnableDurability(dopts));
      for (size_t i = 0; i < k; ++i) {
        ApplyCrashOp(f.auditor.get(), ops[i], options);
      }
      // The process "dies" here: every in-memory structure is discarded.
      // Under WalSync::kNone all acknowledged writes reached the kernel —
      // exactly what survives a kill -9.
    }
    FuzzFixture g = MakeFuzzFixture();
    g.auditor.reset();  // recovery builds its own auditor over g's database
    RecoveryStats stats;
    StreamingAuditor recovered = UnwrapOrDie(StreamingAuditor::RecoverFrom(
        &g.data.db, "LogStream", dopts, &stats));
    EXPECT_TRUE(stats.recovered) << "kill step " << k;
    for (const auto& tmpl : g.templates) Must(recovered.AddTemplate(tmpl));
    // Converge, then finish the interrupted schedule as if nothing happened.
    (void)UnwrapOrDie(recovered.ExplainNew(options));
    for (size_t i = k; i < ops.size(); ++i) {
      ApplyCrashOp(&recovered, ops[i], options);
    }
    (void)UnwrapOrDie(recovered.ExplainNew(options));
    CheckAgainstClonedOracle(g.data.db, g.templates, recovered, k);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// --- Genuinely interleaved readers and writer ------------------------------

TEST(StreamingFuzzTest, ConcurrentReadersUnderIngestMatchClonedOracle) {
  // A real concurrent interleaving, not a serial shuffle: one writer thread
  // streams log and foreign appends in while an auditing reader calls
  // ExplainNew and a point reader calls engine().Explain / IsExplained /
  // explained_count, all against the same live database. No structural ops
  // and no resets — appends-only is the regime snapshot pinning promises to
  // support concurrently. TSAN (the CI sanitizer job runs this binary)
  // checks the synchronization; invariants are checked mid-flight and the
  // cloned-database oracle re-derives every classification after quiesce.
  FuzzFixture f = MakeFuzzFixture();
  StreamingOptions options;
  options.num_threads = 2;
  options.min_rows_per_shard = 1;
  options.executor.min_rows_per_morsel = 1;

  // The seeded lids exist for the whole run: safe point-lookup targets.
  std::vector<int64_t> seeded_lids;
  {
    const Table* stream = UnwrapOrDie(
        static_cast<const Database&>(f.data.db).GetTable("LogStream"));
    AccessLog log = UnwrapOrDie(AccessLog::Wrap(stream));
    for (size_t r = 0; r < stream->num_rows(); ++r) {
      seeded_lids.push_back(log.Get(r).lid);
    }
  }
  ASSERT_FALSE(seeded_lids.empty());

  // Pre-materialize the writer's schedule: the data is deterministic, only
  // the thread interleaving varies run to run. Log batches replay the
  // backlog in order with occasional fresh synthetic rows; foreign appends
  // witness a random backlog access (joinable by construction, so delta
  // passes fire while the log is still growing).
  struct WriteOp {
    std::string table;  // empty = log append
    std::vector<Row> rows;
  };
  std::vector<WriteOp> writes;
  {
    Random rng(20110930);
    const std::vector<std::string> foreign_tables = {"Appointments", "Visits",
                                                     "Documents"};
    size_t backlog_pos = 0;
    while (backlog_pos < f.backlog.size()) {
      WriteOp op;
      if (rng.Bernoulli(0.25)) {
        op.table = rng.Choice(foreign_tables);
        const size_t cols =
            UnwrapOrDie(
                static_cast<const Database&>(f.data.db).GetTable(op.table))
                ->num_columns();
        const Row& src = f.backlog[rng.Uniform(f.backlog.size())];
        Row row(cols);
        row[0] = src[3];                                    // patient
        row[1] = src[1];                                    // time
        for (size_t c = 2; c < cols; ++c) row[c] = src[2];  // user
        op.rows.push_back(std::move(row));
      } else {
        const size_t k = 1 + rng.Uniform(4);
        for (size_t i = 0; i < k && backlog_pos < f.backlog.size(); ++i) {
          op.rows.push_back(f.backlog[backlog_pos++]);
        }
        if (rng.Bernoulli(0.2)) {
          Row row(5);
          row[0] = Value::Int64(f.next_lid++);
          row[1] = Value::Timestamp(rng.UniformRange(f.min_time, f.max_time));
          row[2] = Value::Int64(rng.Choice(f.data.truth.all_users));
          row[3] = Value::Int64(rng.Choice(f.data.truth.all_patients));
          row[4] = Value::String("fuzz");
          op.rows.push_back(std::move(row));
        }
      }
      writes.push_back(std::move(op));
    }
  }

  (void)UnwrapOrDie(f.auditor->ExplainNew(options));  // seed audit

  std::atomic<bool> done{false};
  std::atomic<size_t> audits{0};

  std::thread writer([&] {
    for (const WriteOp& op : writes) {
      if (op.table.empty()) {
        Must(f.auditor->AppendAccessBatch(op.rows));
      } else {
        Must(f.auditor->AppendRows(op.table, op.rows));
      }
      std::this_thread::yield();
    }
    done.store(true, std::memory_order_release);
  });

  std::thread auditing_reader([&] {
    size_t last_to = 0;
    // Keep auditing until the writer finished AND a handful of audits ran,
    // so reads genuinely overlap the append stream even if the writer wins
    // the race to start.
    while (!done.load(std::memory_order_acquire) ||
           audits.load(std::memory_order_relaxed) < 6) {
      const StreamingReport r = UnwrapOrDie(f.auditor->ExplainNew(options));
      EXPECT_FALSE(r.full_reaudit);  // appends never force a re-audit
      EXPECT_GE(r.audited_to, last_to);
      last_to = r.audited_to;
      for (int64_t lid : r.delta_explained_lids) {
        EXPECT_FALSE(std::binary_search(r.explained_lids.begin(),
                                        r.explained_lids.end(), lid));
        EXPECT_FALSE(std::binary_search(r.unexplained_lids.begin(),
                                        r.unexplained_lids.end(), lid));
      }
      audits.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::thread point_reader([&] {
    Random rng(424242);
    while (!done.load(std::memory_order_acquire)) {
      const int64_t lid = rng.Choice(seeded_lids);
      const StatusOr<std::vector<ExplanationInstance>> instances =
          f.auditor->engine().Explain(lid);
      EXPECT_TRUE(instances.ok()) << instances.status().ToString();
      (void)f.auditor->IsExplained(lid);
      (void)f.auditor->explained_count();
    }
  });

  writer.join();
  auditing_reader.join();
  point_reader.join();
  EXPECT_GE(audits.load(), 6u);

  // Quiesce: one closing audit converges the explained set, then the
  // cloned-database oracle re-derives every lid's classification from
  // scratch and must agree.
  const StreamingReport last = UnwrapOrDie(f.auditor->ExplainNew(options));
  EXPECT_FALSE(last.full_reaudit);
  const Table* stream = UnwrapOrDie(
      static_cast<const Database&>(f.data.db).GetTable("LogStream"));
  EXPECT_EQ(f.auditor->audited_rows(), stream->num_rows());
  CheckAgainstClonedOracle(f.data.db, f.templates, *f.auditor, 0);
}

TEST(StreamingFuzzTest, DifferentialOracleAcrossSeedsAndThreadCounts) {
  // >= 200 interleaving steps total (acceptance criterion), each sequence
  // run at thread counts 1 and 4 with byte-identical reports required.
  const uint64_t kSeeds[] = {20110930, 424242};
  const size_t kSteps = 120;
  for (uint64_t seed : kSeeds) {
    const std::vector<std::string> serial = RunFuzz(seed, kSteps, 1);
    ASSERT_FALSE(serial.empty());
    const std::vector<std::string> parallel = RunFuzz(seed, kSteps, 4);
    ASSERT_EQ(serial.size(), parallel.size()) << "seed " << seed;
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], parallel[i])
          << "seed " << seed << " audit " << i
          << ": parallel report diverges from serial";
    }
  }
}

}  // namespace
}  // namespace eba
