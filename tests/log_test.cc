// Unit tests for src/log: AccessLog analyses and the fake-log generator.

#include <gtest/gtest.h>

#include "common/date.h"
#include "log/access_log.h"
#include "log/fake_log.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::UnwrapOrDie;

/// Builds a log with a known access pattern over 3 days:
///   day 1: (u1,p1) L1, (u2,p1) L2
///   day 2: (u1,p1) L3  <- repeat
///   day 3: (u1,p2) L4, (u2,p1) L5 <- L5 repeat
Table MakeLog() {
  Table log(AccessLog::StandardSchema("Log"));
  auto ts = [](int day, int hour) {
    return Date::FromCivil(2010, 1, day, hour, 0, 0).ToSeconds();
  };
  auto add = [&](int64_t lid, int64_t t, int64_t user, int64_t patient) {
    Status s = log.AppendRow({Value::Int64(lid), Value::Timestamp(t),
                              Value::Int64(user), Value::Int64(patient),
                              Value::String("viewed")});
    EBA_CHECK(s.ok());
  };
  add(1, ts(4, 9), 1, 1);
  add(2, ts(4, 10), 2, 1);
  add(3, ts(5, 9), 1, 1);
  add(4, ts(6, 9), 1, 2);
  add(5, ts(6, 10), 2, 1);
  return log;
}

TEST(AccessLogTest, WrapValidatesSchema) {
  Table log = MakeLog();
  EXPECT_TRUE(AccessLog::Wrap(&log).ok());
  EXPECT_FALSE(AccessLog::Wrap(nullptr).ok());

  Table bad(TableSchema("X", {ColumnDef{"Lid", DataType::kInt64, "lid", true}}));
  EXPECT_FALSE(AccessLog::Wrap(&bad).ok());

  // Wrong column type.
  Table wrong_type(TableSchema(
      "Y", {ColumnDef{"Lid", DataType::kInt64, "lid", true},
            ColumnDef{"Date", DataType::kInt64, "", false},  // not timestamp
            ColumnDef{"User", DataType::kInt64, "user", false},
            ColumnDef{"Patient", DataType::kInt64, "patient", false}}));
  EXPECT_FALSE(AccessLog::Wrap(&wrong_type).ok());
}

TEST(AccessLogTest, EntryDecoding) {
  Table table = MakeLog();
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(&table));
  AccessLog::Entry e = log.Get(0);
  EXPECT_EQ(e.lid, 1);
  EXPECT_EQ(e.user, 1);
  EXPECT_EQ(e.patient, 1);
}

TEST(AccessLogTest, FirstAndRepeatAccesses) {
  Table table = MakeLog();
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(&table));
  auto mask = log.FirstAccessMask();
  // L1 first (u1,p1); L2 first (u2,p1); L3 repeat; L4 first (u1,p2);
  // L5 repeat.
  EXPECT_EQ(mask, (std::vector<uint8_t>{1, 1, 0, 1, 0}));
  EXPECT_EQ(log.FirstAccessLids(), (std::vector<int64_t>{1, 2, 4}));
  EXPECT_EQ(log.RepeatAccessLids(), (std::vector<int64_t>{3, 5}));
}

TEST(AccessLogTest, FirstAccessRespectsTimeNotRowOrder) {
  // Insert rows out of time order; the earliest timestamp wins.
  Table table(AccessLog::StandardSchema("Log"));
  auto ts = [](int day) { return Date::FromCivil(2010, 1, day).ToSeconds(); };
  EBA_ASSERT_OK(table.AppendRow({Value::Int64(1), Value::Timestamp(ts(10)),
                                 Value::Int64(1), Value::Int64(1),
                                 Value::String("v")}));
  EBA_ASSERT_OK(table.AppendRow({Value::Int64(2), Value::Timestamp(ts(5)),
                                 Value::Int64(1), Value::Int64(1),
                                 Value::String("v")}));
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(&table));
  auto mask = log.FirstAccessMask();
  EXPECT_EQ(mask[0], 0);  // later access
  EXPECT_EQ(mask[1], 1);  // earlier access is the first
}

TEST(AccessLogTest, DistinctCountsAndDensity) {
  Table table = MakeLog();
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(&table));
  EXPECT_EQ(log.NumDistinctUsers(), 2u);
  EXPECT_EQ(log.NumDistinctPatients(), 2u);
  EXPECT_EQ(log.NumDistinctPairs(), 3u);
  EXPECT_DOUBLE_EQ(log.UserPatientDensity(), 3.0 / 4.0);
}

TEST(AccessLogTest, DaySlicing) {
  Table table = MakeLog();
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(&table));
  auto days = log.DayIndexes();
  EXPECT_EQ(days, (std::vector<int>{1, 1, 2, 3, 3}));
  EXPECT_EQ(log.RowsInDayRange(1, 2).size(), 3u);
  EXPECT_EQ(log.RowsInDayRange(3, 3).size(), 2u);
  EXPECT_TRUE(log.RowsInDayRange(4, 9).empty());
}

TEST(AccessLogTest, MakeSlice) {
  Table table = MakeLog();
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(&table));
  Table slice = UnwrapOrDie(log.MakeSlice("Day3", log.RowsInDayRange(3, 3)));
  EXPECT_EQ(slice.name(), "Day3");
  EXPECT_EQ(slice.num_rows(), 2u);
  EXPECT_EQ(slice.Get(0, 0), Value::Int64(4));
  EXPECT_FALSE(log.MakeSlice("Bad", {99}).ok());
}

TEST(AccessLogTest, EmptyLog) {
  Table table(AccessLog::StandardSchema("Empty"));
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(&table));
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.MinTime(), 0);
  EXPECT_TRUE(log.FirstAccessLids().empty());
  EXPECT_EQ(log.UserPatientDensity(), 0.0);
}

// --------------------------- Fake log ---------------------------

TEST(FakeLogTest, GeneratesRequestedShape) {
  Random rng(42);
  FakeLogOptions options;
  options.num_accesses = 100;
  options.first_lid = 1000;
  options.min_time = 0;
  options.max_time = 86400;
  Table fake = UnwrapOrDie(GenerateFakeLog("Fake", {1, 2, 3}, {10, 20},
                                           options, &rng));
  ASSERT_EQ(fake.num_rows(), 100u);
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(&fake));
  for (size_t r = 0; r < log.size(); ++r) {
    AccessLog::Entry e = log.Get(r);
    EXPECT_GE(e.lid, 1000);
    EXPECT_LT(e.lid, 1100);
    EXPECT_TRUE(e.user >= 1 && e.user <= 3);
    EXPECT_TRUE(e.patient == 10 || e.patient == 20);
    EXPECT_GE(e.time, 0);
    EXPECT_LE(e.time, 86400);
  }
}

TEST(FakeLogTest, RejectsBadInputs) {
  Random rng(1);
  FakeLogOptions options;
  options.num_accesses = 1;
  EXPECT_FALSE(GenerateFakeLog("F", {}, {1}, options, &rng).ok());
  EXPECT_FALSE(GenerateFakeLog("F", {1}, {}, options, &rng).ok());
  options.min_time = 10;
  options.max_time = 5;
  EXPECT_FALSE(GenerateFakeLog("F", {1}, {1}, options, &rng).ok());
}

TEST(FakeLogTest, CombineTracksRealAndFakeLids) {
  Table real = MakeLog();
  Random rng(7);
  FakeLogOptions options;
  options.num_accesses = 5;
  options.first_lid = 100;
  options.max_time = 86400;
  Table fake =
      UnwrapOrDie(GenerateFakeLog("Fake", {1, 2}, {1, 2}, options, &rng));
  CombinedLog combined = UnwrapOrDie(CombineRealAndFake("Eval", real, fake));
  EXPECT_EQ(combined.table.num_rows(), 10u);
  EXPECT_EQ(combined.real_lids.size(), 5u);
  EXPECT_EQ(combined.fake_lids.size(), 5u);
  EXPECT_EQ(combined.table.name(), "Eval");
}

TEST(FakeLogTest, CombineRejectsLidCollision) {
  Table real = MakeLog();
  Random rng(7);
  FakeLogOptions options;
  options.num_accesses = 2;
  options.first_lid = 1;  // collides with real lids
  options.max_time = 1;
  Table fake =
      UnwrapOrDie(GenerateFakeLog("Fake", {1}, {1}, options, &rng));
  EXPECT_FALSE(CombineRealAndFake("Eval", real, fake).ok());
}

}  // namespace
}  // namespace eba
