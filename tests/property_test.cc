// Property-based (parameterized) tests of the library's core invariants:
//   - support monotonicity: extending a path never increases support
//     (the pruning property Algorithm 1 relies on),
//   - executor strategy agreement on randomized databases,
//   - canonical-key reversal invariance on random paths,
//   - date round-trips across a wide sweep,
//   - estimator sanity (never negative, bounded by log size).

#include <gtest/gtest.h>

#include <set>

#include "common/date.h"
#include "common/random.h"
#include "core/miner.h"
#include "log/access_log.h"
#include "graph/schema_graph.h"
#include "query/executor.h"
#include "query/optimizer.h"
#include "query/parser.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::UnwrapOrDie;

/// Builds a randomized mini-hospital: Log + Events(Patient, Worker) with
/// `n_log` accesses, `n_events` events over `n_users` users and
/// `n_patients` patients, driven by `seed`.
Database RandomDatabase(uint64_t seed, size_t n_log, size_t n_events,
                        int64_t n_users, int64_t n_patients) {
  Random rng(seed);
  Database db;
  EBA_CHECK(db
                .CreateTable(TableSchema(
                    "Events",
                    {ColumnDef{"Patient", DataType::kInt64, "patient", false},
                     ColumnDef{"Worker", DataType::kInt64, "user", false},
                     ColumnDef{"Backup", DataType::kInt64, "user", false}}))
                .ok());
  EBA_CHECK(db.CreateTable(AccessLog::StandardSchema("Log")).ok());
  Table* events = db.GetTable("Events").value();
  Table* log = db.GetTable("Log").value();
  for (size_t i = 0; i < n_events; ++i) {
    EBA_CHECK(events
                  ->AppendRow({Value::Int64(rng.UniformRange(1, n_patients)),
                               Value::Int64(rng.UniformRange(1, n_users)),
                               Value::Int64(rng.UniformRange(1, n_users))})
                  .ok());
  }
  for (size_t i = 0; i < n_log; ++i) {
    EBA_CHECK(log
                  ->AppendRow({Value::Int64(static_cast<int64_t>(i) + 1),
                               Value::Timestamp(static_cast<int64_t>(i) * 60),
                               Value::Int64(rng.UniformRange(1, n_users)),
                               Value::Int64(rng.UniformRange(1, n_patients)),
                               Value::String("viewed")})
                  .ok());
  }
  return db;
}

class RandomDbTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDbTest,
                         ::testing::Values(1u, 7u, 13u, 101u, 9999u));

TEST_P(RandomDbTest, SupportMonotonicity) {
  Database db = RandomDatabase(GetParam(), 300, 150, 20, 40);
  Executor executor(&db);
  QAttr lid{0, 0};

  PathQuery partial = UnwrapOrDie(
      ParsePathQuery(db, "Log L, Events E", "L.Patient = E.Patient"));
  PathQuery full = UnwrapOrDie(
      ParsePathQuery(db, "Log L, Events E",
                     "L.Patient = E.Patient AND E.Worker = L.User"));
  int64_t s_partial = UnwrapOrDie(executor.CountDistinct(
      partial, lid, Executor::SupportStrategy::kDedupFrontier));
  int64_t s_full = UnwrapOrDie(executor.CountDistinct(
      full, lid, Executor::SupportStrategy::kDedupFrontier));
  EXPECT_LE(s_full, s_partial);
  EXPECT_LE(s_partial, 300);
}

TEST_P(RandomDbTest, StrategiesAgreeOnRandomQueries) {
  Database db = RandomDatabase(GetParam(), 200, 120, 15, 30);
  Executor executor(&db);
  QAttr lid{0, 0};
  const char* wheres[] = {
      "L.Patient = E.Patient",
      "L.Patient = E.Patient AND E.Worker = L.User",
      "L.Patient = E.Patient AND E.Backup = L.User",
  };
  for (const char* where : wheres) {
    PathQuery q = UnwrapOrDie(ParsePathQuery(db, "Log L, Events E", where));
    int64_t naive = UnwrapOrDie(executor.CountDistinct(
        q, lid, Executor::SupportStrategy::kNaive));
    int64_t dedup = UnwrapOrDie(executor.CountDistinct(
        q, lid, Executor::SupportStrategy::kDedupFrontier));
    EXPECT_EQ(naive, dedup) << where;
  }
}

TEST_P(RandomDbTest, DecorationOnlyShrinksResults) {
  Database db = RandomDatabase(GetParam(), 200, 120, 15, 30);
  Executor executor(&db);
  QAttr lid{0, 0};
  PathQuery simple = UnwrapOrDie(ParsePathQuery(
      db, "Log L, Events E",
      "L.Patient = E.Patient AND E.Worker = L.User"));
  PathQuery decorated = UnwrapOrDie(ParsePathQuery(
      db, "Log L, Events E",
      "L.Patient = E.Patient AND E.Worker = L.User AND L.Lid <= 100"));
  int64_t s_simple = UnwrapOrDie(executor.CountDistinct(
      simple, lid, Executor::SupportStrategy::kNaive));
  int64_t s_decorated = UnwrapOrDie(executor.CountDistinct(
      decorated, lid, Executor::SupportStrategy::kNaive));
  EXPECT_LE(s_decorated, s_simple);
}

TEST_P(RandomDbTest, EstimatorBoundedAndNonNegative) {
  Database db = RandomDatabase(GetParam(), 250, 100, 12, 25);
  CardinalityEstimator estimator(&db);
  QAttr lid{0, 0};
  PathQuery q = UnwrapOrDie(ParsePathQuery(
      db, "Log L, Events E",
      "L.Patient = E.Patient AND E.Worker = L.User"));
  double est = UnwrapOrDie(estimator.EstimateDistinctLogIds(q, lid));
  EXPECT_GE(est, 0.0);
  EXPECT_LE(est, 250.0);
}

TEST_P(RandomDbTest, MinerAlgorithmsAgreeOnRandomData) {
  Database db = RandomDatabase(GetParam(), 150, 80, 10, 20);
  MinerOptions options;
  options.log_table = "Log";
  options.support_fraction = 0.05;
  options.max_length = 3;
  options.max_tables = 3;
  options.skip_nonselective = false;
  TemplateMiner miner(&db, options);

  auto keys = [&](const MiningResult& r) {
    std::set<std::string> out;
    for (const auto& m : r.templates) {
      out.insert(UnwrapOrDie(m.tmpl.CanonicalKey(db)));
    }
    return out;
  };
  auto one = keys(UnwrapOrDie(miner.MineOneWay()));
  auto two = keys(UnwrapOrDie(miner.MineTwoWay()));
  auto bridge = keys(UnwrapOrDie(miner.MineBridged(2)));
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, bridge);
}

// --------------------------- Path properties ---------------------------

class PathPropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, PathPropertyTest,
                         ::testing::Values(3u, 17u, 23u, 555u));

TEST_P(PathPropertyTest, CanonicalKeyReversalInvariance) {
  Random rng(GetParam());
  // Random edges over synthetic attribute names.
  auto random_attr = [&]() {
    return AttrId{"T" + std::to_string(rng.Uniform(4)),
                  "c" + std::to_string(rng.Uniform(3))};
  };
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<JoinEdge> edges;
    size_t len = 1 + rng.Uniform(4);
    for (size_t i = 0; i < len; ++i) {
      edges.push_back(JoinEdge{random_attr(), random_attr()});
    }
    MiningPath fwd(edges);
    std::vector<JoinEdge> reversed;
    for (auto it = edges.rbegin(); it != edges.rend(); ++it) {
      reversed.push_back(JoinEdge{it->to, it->from});
    }
    MiningPath bwd(reversed);
    EXPECT_EQ(fwd.CanonicalKey(), bwd.CanonicalKey());
  }
}

// --------------------------- Date sweep ---------------------------

class DateSweepTest : public ::testing::TestWithParam<int64_t> {};

INSTANTIATE_TEST_SUITE_P(Seconds, DateSweepTest,
                         ::testing::Values(0L, 86399L, 86400L, 1262304000L,
                                           1262563017L, 2147483647L,
                                           -86400L, 4102444800L));

TEST_P(DateSweepTest, SecondsRoundTrip) {
  int64_t seconds = GetParam();
  Date d = Date::FromSeconds(seconds);
  EXPECT_EQ(d.ToSeconds(), seconds);
  // Day arithmetic consistency.
  EXPECT_EQ(d.AddDays(1).ToSeconds(), seconds + 86400);
  EXPECT_EQ(d.AddDays(-1).ToSeconds(), seconds - 86400);
}

class DateRandomSweep : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, DateRandomSweep,
                         ::testing::Values(11u, 22u, 33u));

TEST_P(DateRandomSweep, RandomRoundTrips) {
  Random rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    // Years ~1900..2100.
    int64_t seconds = rng.UniformRange(-2208988800LL, 4102444800LL);
    Date d = Date::FromSeconds(seconds);
    EXPECT_EQ(d.ToSeconds(), seconds);
    EXPECT_GE(d.month(), 1);
    EXPECT_LE(d.month(), 12);
    EXPECT_GE(d.day(), 1);
    EXPECT_LE(d.day(), 31);
  }
}

// --------------------------- Value hashing sweep ---------------------------

class ValueHashSweep : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, ValueHashSweep, ::testing::Values(5u, 50u));

TEST_P(ValueHashSweep, EqualValuesHashEqual) {
  Random rng(GetParam());
  for (int i = 0; i < 1000; ++i) {
    int64_t x = static_cast<int64_t>(rng.Next());
    EXPECT_EQ(Value::Int64(x).Hash(), Value::Int64(x).Hash());
    EXPECT_EQ(Value::Timestamp(x).Hash(), Value::Timestamp(x).Hash());
    std::string s = std::to_string(x);
    EXPECT_EQ(Value::String(s).Hash(), Value::String(s).Hash());
  }
}

}  // namespace
}  // namespace eba
