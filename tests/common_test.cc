// Unit tests for src/common: Status/StatusOr, Value, Date, Random, string
// utilities, and CSV round-trips.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdio>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>

#include "common/csv.h"
#include "common/date.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/value.h"
#include "tests/test_util.h"

namespace eba {
namespace {

// --------------------------- Status ---------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such table");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "no such table");
  EXPECT_EQ(s.ToString(), "NotFound: no such table");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::Internal("x"), Status::Internal("x"));
  EXPECT_NE(Status::Internal("x"), Status::Internal("y"));
  EXPECT_NE(Status::Internal("x"), Status::NotFound("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= 7; ++code) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(code)), "Unknown");
  }
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UsesReturnIfError(int x) {
  EBA_RETURN_IF_ERROR(ParsePositive(x).status());
  return Status::OK();
}

StatusOr<int> UsesAssignOrReturn(int x) {
  EBA_ASSIGN_OR_RETURN(int a, ParsePositive(x));
  EBA_ASSIGN_OR_RETURN(int b, ParsePositive(x + 1));
  return a + b;
}

TEST(StatusOrTest, ValueAndErrorPaths) {
  StatusOr<int> good = ParsePositive(5);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 5);
  EXPECT_EQ(good.value_or(-1), 5);

  StatusOr<int> bad = ParsePositive(-5);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(StatusOrTest, MacrosPropagate) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_FALSE(UsesReturnIfError(0).ok());
  StatusOr<int> combined = UsesAssignOrReturn(2);
  ASSERT_TRUE(combined.ok());
  EXPECT_EQ(*combined, 5);
  EXPECT_FALSE(UsesAssignOrReturn(0).ok());
}

TEST(StatusOrTest, MoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> p = std::make_unique<int>(7);
  ASSERT_TRUE(p.ok());
  std::unique_ptr<int> owned = std::move(p).value();
  EXPECT_EQ(*owned, 7);
}

// --------------------------- Value ---------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int64(-42).AsInt64(), -42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_EQ(Value::Timestamp(12345).AsTimestamp(), 12345);
}

TEST(ValueTest, TypeMismatchThrowsCheckFailure) {
  EXPECT_THROW(Value::Int64(1).AsString(), CheckFailure);
  EXPECT_THROW(Value::String("x").AsInt64(), CheckFailure);
  EXPECT_THROW(Value::Double(1.0).RawInt64(), CheckFailure);
}

TEST(ValueTest, EqualityWithinType) {
  EXPECT_EQ(Value::Int64(3), Value::Int64(3));
  EXPECT_NE(Value::Int64(3), Value::Int64(4));
  EXPECT_NE(Value::Int64(3), Value::Timestamp(3));  // type matters
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_EQ(Value::String("a"), Value::String("a"));
}

TEST(ValueTest, OrderingWithinAndAcrossTypes) {
  EXPECT_LT(Value::Int64(1), Value::Int64(2));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  // Cross-type: ordered by type tag; NULL sorts first.
  EXPECT_LT(Value::Null(), Value::Int64(-100));
  EXPECT_FALSE(Value::Null() < Value::Null());
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int64(9).Hash(), Value::Int64(9).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  EXPECT_NE(Value::Int64(9).Hash(), Value::Timestamp(9).Hash());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Int64(17).ToString(), "17");
  EXPECT_EQ(Value::String("x").ToString(), "x");
  int64_t t = Date::FromCivil(2010, 1, 3, 10, 16, 57).ToSeconds();
  EXPECT_EQ(Value::Timestamp(t).ToString(), "2010-01-03 10:16:57");
}

// --------------------------- Date ---------------------------

TEST(DateTest, CivilRoundTrip) {
  Date d = Date::FromCivil(2010, 1, 3, 10, 16, 57);
  EXPECT_EQ(d.year(), 2010);
  EXPECT_EQ(d.month(), 1);
  EXPECT_EQ(d.day(), 3);
  Date back = Date::FromSeconds(d.ToSeconds());
  EXPECT_EQ(back, d);
  EXPECT_EQ(back.hour(), 10);
  EXPECT_EQ(back.minute(), 16);
  EXPECT_EQ(back.second(), 57);
}

TEST(DateTest, EpochOrigin) {
  Date epoch = Date::FromSeconds(0);
  EXPECT_EQ(epoch.year(), 1970);
  EXPECT_EQ(epoch.month(), 1);
  EXPECT_EQ(epoch.day(), 1);
  EXPECT_EQ(epoch.DayOfWeek(), 4);  // Thursday
}

TEST(DateTest, LogStringMatchesCareWebFormat) {
  // The paper's example log line: "Mon Jan 03 10:16:57 2010".
  Date d = Date::FromCivil(2010, 1, 3, 10, 16, 57);
  // Jan 3 2010 was actually a Sunday.
  EXPECT_EQ(d.ToLogString(), "Sun Jan 03 10:16:57 2010");
  Date monday = Date::FromCivil(2010, 1, 4, 8, 0, 0);
  EXPECT_EQ(monday.ToLogString(), "Mon Jan 04 08:00:00 2010");
}

TEST(DateTest, ParseFormats) {
  Date d1 = testing_util::UnwrapOrDie(Date::Parse("2010-04-28"));
  EXPECT_EQ(d1.month(), 4);
  EXPECT_EQ(d1.hour(), 0);
  Date d2 = testing_util::UnwrapOrDie(Date::Parse("2010-04-28 14:29:08"));
  EXPECT_EQ(d2.second(), 8);
  EXPECT_FALSE(Date::Parse("not a date").ok());
  EXPECT_FALSE(Date::Parse("2010-13-01").ok());
}

TEST(DateTest, AddDaysAcrossMonthAndLeapYear) {
  Date d = Date::FromCivil(2012, 2, 28, 12, 0, 0);
  EXPECT_EQ(d.AddDays(1).day(), 29);  // 2012 is a leap year
  EXPECT_EQ(d.AddDays(2).month(), 3);
  Date d2 = Date::FromCivil(2010, 12, 31);
  EXPECT_EQ(d2.AddDays(1).year(), 2011);
}

TEST(DateTest, NegativeSecondsBeforeEpoch) {
  Date d = Date::FromSeconds(-1);
  EXPECT_EQ(d.year(), 1969);
  EXPECT_EQ(d.month(), 12);
  EXPECT_EQ(d.day(), 31);
  EXPECT_EQ(d.hour(), 23);
  EXPECT_EQ(d.second(), 59);
}

TEST(DateTest, EpochDaysInverse) {
  for (int64_t days : {-1000L, -1L, 0L, 1L, 365L, 14610L, 20000L}) {
    int y, m, dd;
    Date::CivilFromEpochDays(days, &y, &m, &dd);
    EXPECT_EQ(Date::EpochDaysFromCivil(y, m, dd), days);
  }
}

// --------------------------- Random ---------------------------

TEST(RandomTest, DeterministicForSeed) {
  Random a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformBounds) {
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
    int64_t r = rng.UniformRange(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, ZipfSkewsTowardLowRanks) {
  Random rng(3);
  size_t low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(100, 1.0) < 10) ++low;
  }
  // With s=1 over 100 items, ranks 0-9 carry ~52% of the mass.
  EXPECT_GT(low, static_cast<size_t>(n) * 40 / 100);
  // Uniform (s=0) should not skew.
  low = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(100, 0.0) < 10) ++low;
  }
  EXPECT_LT(low, static_cast<size_t>(n) * 15 / 100);
}

TEST(RandomTest, PoissonMeanRoughlyLambda) {
  Random rng(4);
  for (double lambda : {0.5, 3.0, 20.0, 100.0}) {
    double sum = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(lambda));
    double mean = sum / n;
    EXPECT_NEAR(mean, lambda, std::max(0.3, lambda * 0.1));
  }
}

TEST(RandomTest, SampleWithoutReplacementDistinct) {
  Random rng(5);
  for (size_t k : {0ul, 1ul, 5ul, 50ul, 100ul}) {
    auto sample = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (size_t v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(RandomTest, WeightedIndexRespectsWeights) {
  Random rng(6);
  std::vector<double> weights = {0.0, 9.0, 1.0};
  size_t counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) counts[rng.WeightedIndex(weights)]++;
  EXPECT_EQ(counts[0], 0u);
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(RandomTest, ShuffleIsPermutation) {
  Random rng(7);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

// --------------------------- String utils ---------------------------

TEST(StringUtilTest, JoinAndSplit) {
  EXPECT_EQ(Join(std::vector<std::string>{"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join(std::vector<std::string>{}, ","), "");
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, TrimAndCase) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("AND", "and"));
  EXPECT_FALSE(EqualsIgnoreCase("AND", "an"));
}

TEST(StringUtilTest, AffixChecks) {
  EXPECT_TRUE(StartsWith("Log.Patient", "Log"));
  EXPECT_FALSE(StartsWith("Log", "Log.Patient"));
  EXPECT_TRUE(EndsWith("Log.Patient", "Patient"));
}

TEST(StringUtilTest, StrFormatAndReplace) {
  EXPECT_EQ(StrFormat("%d-%s", 3, "x"), "3-x");
  EXPECT_EQ(ReplaceAll("a.b.c", ".", "::"), "a::b::c");
  EXPECT_EQ(ReplaceAll("aaa", "a", "aa"), "aaaaaa");
}

TEST(StringUtilTest, FormatCount) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(4512345), "4,512,345");
  EXPECT_EQ(FormatCount(-1234), "-1,234");
}

// --------------------------- CSV ---------------------------

TEST(CsvTest, EncodeDecodeRoundTrip) {
  std::vector<std::string> fields = {"plain", "with,comma", "with\"quote",
                                     ""};
  std::string line = CsvEncodeRow(fields);
  auto decoded = testing_util::UnwrapOrDie(CsvDecodeRow(line));
  EXPECT_EQ(decoded, fields);
}

TEST(CsvTest, DecodeRejectsMalformed) {
  EXPECT_FALSE(CsvDecodeRow("a,\"unterminated").ok());
  EXPECT_FALSE(CsvDecodeRow("a,b\"mid").ok());
}

TEST(CsvTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/eba_csv_test.csv";
  std::vector<std::vector<std::string>> rows = {
      {"h1", "h2"}, {"1", "x,y"}, {"2", "z"}};
  EBA_ASSERT_OK(CsvWriteFile(path, rows));
  auto read = testing_util::UnwrapOrDie(CsvReadFile(path));
  EXPECT_EQ(read, rows);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsNotFound) {
  EXPECT_TRUE(CsvReadFile("/nonexistent/path.csv").status().IsNotFound());
}

// --------------------------- ThreadPool ---------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { ++count; });
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ParallelForTest, CoversEachShardExactlyOnce) {
  for (size_t threads : {size_t{1}, size_t{3}, size_t{8}}) {
    // Each shard owns its slot, and ParallelFor joins before the reads, so
    // plain ints suffice.
    std::vector<int> hits(17, 0);
    ParallelFor(threads, hits.size(), [&hits](size_t s) { ++hits[s]; });
    for (size_t s = 0; s < hits.size(); ++s) {
      EXPECT_EQ(hits[s], 1) << "shard " << s << ", " << threads << " threads";
    }
  }
}

TEST(ParallelForTest, ZeroShardsIsANoop) {
  ParallelFor(4, 0, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, RethrowsFirstShardError) {
  EXPECT_THROW(
      ParallelFor(4, 8,
                  [](size_t s) {
                    if (s % 2 == 1) throw std::runtime_error("shard failed");
                  }),
      std::runtime_error);
}

TEST(ParallelForTest, InlinePathRunsAllShardsDespiteError) {
  // The serial (num_threads == 1) path has the same contract as the pooled
  // one: every shard runs before the first error is rethrown.
  std::vector<int> hits(5, 0);
  EXPECT_THROW(ParallelFor(1, hits.size(),
                           [&hits](size_t s) {
                             ++hits[s];
                             if (s == 1) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1, 1, 1}));
}

TEST(ParallelForTest, NestedCallsOnSharedPoolComplete) {
  // An inner ParallelFor issued from inside an outer shard on the same pool
  // must not deadlock: completion is tracked per call and the calling
  // thread participates, so every inner call can finish even when all pool
  // workers are tied up in outer shards.
  ThreadPool pool(2);
  std::array<std::array<std::atomic<int>, 4>, 4> hits{};
  ParallelFor(&pool, 4, [&](size_t outer) {
    ParallelFor(&pool, 4, [&, outer](size_t inner) { ++hits[outer][inner]; });
  });
  for (const auto& row : hits) {
    for (const auto& cell : row) EXPECT_EQ(cell.load(), 1);
  }
}

TEST(ParallelForTest, ConcurrentCallsOnSharedPoolAreIndependent) {
  // Two ParallelFor rounds issued from different threads over one pool must
  // each wait only for their own shards.
  ThreadPool pool(3);
  std::atomic<int> total{0};
  std::thread other(
      [&] { ParallelFor(&pool, 16, [&](size_t) { ++total; }); });
  ParallelFor(&pool, 16, [&](size_t) { ++total; });
  other.join();
  EXPECT_EQ(total.load(), 32);
}

TEST(SplitShardsTest, PartitionsWithoutGapsOrOverlap) {
  auto shards = SplitShards(1000, 4, 1);
  ASSERT_EQ(shards.size(), 4u);
  size_t expect_begin = 0;
  size_t total = 0;
  for (const auto& s : shards) {
    EXPECT_EQ(s.begin, expect_begin);
    EXPECT_LT(s.begin, s.end);
    total += s.end - s.begin;
    expect_begin = s.end;
  }
  EXPECT_EQ(total, 1000u);
  EXPECT_EQ(shards.back().end, 1000u);
}

TEST(SplitShardsTest, RespectsMinimumShardSize) {
  // 100 rows with a 64-row minimum: only one shard fits.
  auto shards = SplitShards(100, 8, 64);
  ASSERT_EQ(shards.size(), 1u);
  EXPECT_EQ(shards[0].begin, 0u);
  EXPECT_EQ(shards[0].end, 100u);
}

TEST(SplitShardsTest, EmptyInputYieldsNoShards) {
  EXPECT_TRUE(SplitShards(0, 4, 1).empty());
}

TEST(ThreadPoolTest, HardwareThreadsIsAtLeastOne) {
  EXPECT_GE(HardwareThreads(), 1u);
}

TEST(SplitShardsTest, UnevenRemainderSpreadsOverLeadingShards) {
  auto shards = SplitShards(10, 4, 1);
  ASSERT_EQ(shards.size(), 4u);
  std::vector<size_t> sizes;
  for (const auto& s : shards) sizes.push_back(s.end - s.begin);
  EXPECT_EQ(sizes, (std::vector<size_t>{3, 3, 2, 2}));
}

TEST(SplitShardsTest, ShardSizesNeverDifferByMoreThanOne) {
  // The balance invariant: a remainder is spread one element at a time over
  // the leading shards, never accumulated onto the last shard (which would
  // make it up to ~2x the others and set the wall-clock of the whole wave).
  for (size_t n : {1u, 7u, 100u, 101u, 999u, 1000u, 65536u, 65537u}) {
    for (size_t max_shards : {1u, 2u, 3u, 4u, 7u, 16u}) {
      for (size_t min_per : {1u, 10u, 4096u}) {
        auto shards = SplitShards(n, max_shards, min_per);
        ASSERT_FALSE(shards.empty());
        size_t lo = n, hi = 0, total = 0, expect_begin = 0;
        for (const auto& s : shards) {
          ASSERT_EQ(s.begin, expect_begin);
          ASSERT_LT(s.begin, s.end);
          const size_t len = s.end - s.begin;
          lo = std::min(lo, len);
          hi = std::max(hi, len);
          total += len;
          expect_begin = s.end;
        }
        EXPECT_EQ(total, n) << "n=" << n;
        EXPECT_LE(hi - lo, 1u)
            << "n=" << n << " max_shards=" << max_shards
            << " min_per=" << min_per;
        EXPECT_LE(shards.size(), max_shards);
      }
    }
  }
}

TEST(SplitShardsAlignedTest, InteriorBoundariesLieOnAlignment) {
  const size_t kAlign = 1u << 16;
  // 5 chunks and a partial tail, 4 shards: boundaries must be multiples of
  // the alignment, sizes within one chunk of each other.
  const size_t n = 5 * kAlign + 1234;
  auto shards = SplitShardsAligned(n, 4, 1, kAlign);
  ASSERT_EQ(shards.size(), 4u);
  size_t expect_begin = 0, lo = n, hi = 0;
  for (size_t s = 0; s < shards.size(); ++s) {
    EXPECT_EQ(shards[s].begin, expect_begin);
    if (s + 1 < shards.size()) {
      EXPECT_EQ(shards[s].end % kAlign, 0u) << "shard " << s;
    }
    const size_t len = shards[s].end - shards[s].begin;
    lo = std::min(lo, len);
    hi = std::max(hi, len);
    expect_begin = shards[s].end;
  }
  EXPECT_EQ(shards.back().end, n);
  // Remainder chunks spread over leading shards: no shard exceeds another
  // by more than one alignment block.
  EXPECT_LE(hi - lo, kAlign);
}

TEST(SplitShardsAlignedTest, FallsBackWhenAlignmentWouldCostShards) {
  // 18k rows fit inside one 64k chunk; a strict aligned split would yield a
  // single shard and de-parallelize mid-size workloads. The fallback must
  // return the plain even split instead.
  auto aligned = SplitShardsAligned(18000, 4, 1, 1u << 16);
  auto plain = SplitShards(18000, 4, 1);
  ASSERT_EQ(aligned.size(), plain.size());
  for (size_t s = 0; s < aligned.size(); ++s) {
    EXPECT_EQ(aligned[s].begin, plain[s].begin);
    EXPECT_EQ(aligned[s].end, plain[s].end);
  }
}

TEST(SplitShardsAlignedTest, RangeVariantAlignsAbsoluteRows) {
  const size_t kAlign = 100;
  // An unaligned watermark start: interior boundaries are absolute
  // multiples of the alignment; the first shard absorbs the ragged head.
  auto shards = SplitShardsAlignedRange(250, 1050, 4, 1, kAlign);
  ASSERT_GT(shards.size(), 1u);
  EXPECT_EQ(shards.front().begin, 250u);
  EXPECT_EQ(shards.back().end, 1050u);
  for (size_t s = 0; s + 1 < shards.size(); ++s) {
    EXPECT_EQ(shards[s].end, shards[s + 1].begin);
    EXPECT_EQ(shards[s].end % kAlign, 0u) << "shard " << s;
  }
}

TEST(SplitShardsAlignedTest, EmptyAndDegenerateRanges) {
  EXPECT_TRUE(SplitShardsAligned(0, 4, 1, 64).empty());
  EXPECT_TRUE(SplitShardsAlignedRange(10, 10, 4, 1, 64).empty());
  // alignment <= 1 degrades to SplitShards exactly.
  auto a = SplitShardsAligned(10, 4, 1, 1);
  auto b = SplitShards(10, 4, 1);
  ASSERT_EQ(a.size(), b.size());
  for (size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a[s].begin, b[s].begin);
    EXPECT_EQ(a[s].end, b[s].end);
  }
}

}  // namespace
}  // namespace eba
