// Unit tests for the template miner: Algorithm 1 on the paper's Figure 3
// example, two-way and bridged variants, optimization toggles, and
// algorithm-agreement properties.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/miner.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::BuildPaperToyDatabase;
using testing_util::UnwrapOrDie;

MinerOptions ToyOptions(double support_fraction) {
  MinerOptions options;
  options.log_table = "Log";
  options.support_fraction = support_fraction;
  options.max_length = 4;
  options.max_tables = 3;
  // The toy database is tiny; estimates are too coarse to be useful.
  options.skip_nonselective = false;
  return options;
}

std::set<std::string> Keys(const Database& db, const MiningResult& result) {
  std::set<std::string> keys;
  for (const auto& mined : result.templates) {
    keys.insert(UnwrapOrDie(mined.tmpl.CanonicalKey(db)));
  }
  return keys;
}

TEST(MinerTest, Figure3MinesTemplatesAAndB) {
  Database db = BuildPaperToyDatabase();
  TemplateMiner miner(&db, ToyOptions(0.5));
  MiningResult result = UnwrapOrDie(miner.MineOneWay());

  // Expect at least: template (A) appointment (support 1 = 50%) and
  // template (B) same-department (support 2 = 100%).
  ASSERT_GE(result.templates.size(), 2u);
  bool found_a = false, found_b = false;
  for (const auto& mined : result.templates) {
    if (mined.tmpl.RawLength() == 2 && mined.support == 1) found_a = true;
    if (mined.tmpl.RawLength() == 4 && mined.support == 2) found_b = true;
  }
  EXPECT_TRUE(found_a) << "template (A) not mined";
  EXPECT_TRUE(found_b) << "template (B) not mined";
  EXPECT_EQ(result.log_size, 2);
  EXPECT_DOUBLE_EQ(result.support_threshold, 1.0);
}

TEST(MinerTest, SupportThresholdPrunes) {
  Database db = BuildPaperToyDatabase();
  // Threshold 100%: template (A) (support 50%) must be pruned.
  TemplateMiner miner(&db, ToyOptions(1.0));
  MiningResult result = UnwrapOrDie(miner.MineOneWay());
  for (const auto& mined : result.templates) {
    EXPECT_GE(mined.support, 2);
    EXPECT_DOUBLE_EQ(mined.support_fraction, 1.0);
  }
}

TEST(MinerTest, MaxLengthRestricts) {
  Database db = BuildPaperToyDatabase();
  MinerOptions options = ToyOptions(0.5);
  options.max_length = 2;
  TemplateMiner miner(&db, options);
  MiningResult result = UnwrapOrDie(miner.MineOneWay());
  for (const auto& mined : result.templates) {
    EXPECT_LE(mined.tmpl.RawLength(), 2);
  }
  // Template (B) (length 4) must be absent.
  for (const auto& mined : result.templates) {
    EXPECT_NE(mined.support, 2);
  }
}

TEST(MinerTest, MaxTablesRestricts) {
  Database db = BuildPaperToyDatabase();
  MinerOptions options = ToyOptions(0.5);
  options.max_tables = 2;  // Log + one event table; Doctor_Info paths die
  TemplateMiner miner(&db, options);
  MiningResult result = UnwrapOrDie(miner.MineOneWay());
  for (const auto& mined : result.templates) {
    EXPECT_LE(mined.tmpl.CountedTables(db), 2);
  }
}

TEST(MinerTest, AllAlgorithmsAgreeOnFigure3) {
  Database db = BuildPaperToyDatabase();
  TemplateMiner miner(&db, ToyOptions(0.5));
  MiningResult one_way = UnwrapOrDie(miner.MineOneWay());
  MiningResult two_way = UnwrapOrDie(miner.MineTwoWay());
  MiningResult bridge2 = UnwrapOrDie(miner.MineBridged(2));
  MiningResult bridge3 = UnwrapOrDie(miner.MineBridged(3));

  std::set<std::string> base = Keys(db, one_way);
  EXPECT_EQ(Keys(db, two_way), base);
  EXPECT_EQ(Keys(db, bridge2), base);
  EXPECT_EQ(Keys(db, bridge3), base);
  EXPECT_FALSE(base.empty());
}

TEST(MinerTest, SupportValuesAgreeAcrossAlgorithms) {
  Database db = BuildPaperToyDatabase();
  TemplateMiner miner(&db, ToyOptions(0.5));
  auto support_by_key = [&](const MiningResult& r) {
    std::map<std::string, int64_t> m;
    for (const auto& mined : r.templates) {
      m[UnwrapOrDie(mined.tmpl.CanonicalKey(db))] = mined.support;
    }
    return m;
  };
  auto one_way = support_by_key(UnwrapOrDie(miner.MineOneWay()));
  auto bridge = support_by_key(UnwrapOrDie(miner.MineBridged(2)));
  EXPECT_EQ(one_way, bridge);
}

TEST(MinerTest, CacheReducesSupportQueries) {
  Database db = BuildPaperToyDatabase();
  MinerOptions with_cache = ToyOptions(0.5);
  MinerOptions no_cache = with_cache;
  no_cache.cache_support = false;

  MiningResult cached = UnwrapOrDie(TemplateMiner(&db, with_cache).MineTwoWay());
  MiningResult uncached = UnwrapOrDie(TemplateMiner(&db, no_cache).MineTwoWay());
  EXPECT_EQ(Keys(db, cached), Keys(db, uncached));
  EXPECT_GT(cached.stats.support_cache_hits, 0u);
  EXPECT_LT(cached.stats.support_queries, uncached.stats.support_queries);
}

TEST(MinerTest, SkipOptimizationNeverChangesResults) {
  Database db = BuildPaperToyDatabase();
  MinerOptions skip_on = ToyOptions(0.5);
  skip_on.skip_nonselective = true;
  skip_on.skip_constant_c = 0.0;  // skip as aggressively as possible
  MinerOptions skip_off = ToyOptions(0.5);

  MiningResult on = UnwrapOrDie(TemplateMiner(&db, skip_on).MineOneWay());
  MiningResult off = UnwrapOrDie(TemplateMiner(&db, skip_off).MineOneWay());
  // Skipping defers support checks but never drops explanations (§3.2.1).
  EXPECT_EQ(Keys(db, on), Keys(db, off));
}

TEST(MinerTest, SupportStrategiesAgree) {
  Database db = BuildPaperToyDatabase();
  MinerOptions naive = ToyOptions(0.5);
  naive.support_strategy = Executor::SupportStrategy::kNaive;
  MinerOptions dedup = ToyOptions(0.5);
  dedup.support_strategy = Executor::SupportStrategy::kDedupFrontier;
  EXPECT_EQ(Keys(db, UnwrapOrDie(TemplateMiner(&db, naive).MineOneWay())),
            Keys(db, UnwrapOrDie(TemplateMiner(&db, dedup).MineOneWay())));
}

TEST(MinerTest, TimingsRecordedPerLength) {
  Database db = BuildPaperToyDatabase();
  MinerOptions options = ToyOptions(0.5);
  options.max_length = 4;
  MiningResult result = UnwrapOrDie(TemplateMiner(&db, options).MineOneWay());
  ASSERT_EQ(result.stats.timings.size(), 4u);
  for (size_t i = 1; i < result.stats.timings.size(); ++i) {
    EXPECT_EQ(result.stats.timings[i].length,
              result.stats.timings[i - 1].length + 1);
    EXPECT_GE(result.stats.timings[i].cumulative_seconds,
              result.stats.timings[i - 1].cumulative_seconds);
  }
}

TEST(MinerTest, MinedTemplatesAreExecutable) {
  Database db = BuildPaperToyDatabase();
  MiningResult result =
      UnwrapOrDie(TemplateMiner(&db, ToyOptions(0.5)).MineOneWay());
  Executor executor(&db);
  for (const auto& mined : result.templates) {
    int64_t support = UnwrapOrDie(executor.CountDistinct(
        mined.tmpl.query(), mined.tmpl.lid_attr(),
        Executor::SupportStrategy::kDedupFrontier));
    EXPECT_EQ(support, mined.support) << mined.tmpl.name();
  }
}

TEST(MinerTest, MinedRepeatAccessWhenLogSelfJoinAllowed) {
  Database db = BuildPaperToyDatabase();
  // Add a repeat access and allow log self-joins.
  Table* log = db.GetTable("Log").value();
  EBA_ASSERT_OK(log->AppendRow(
      {Value::Int64(3),
       Value::Timestamp(Date::FromCivil(2010, 3, 1).ToSeconds()),
       Value::Int64(testing_util::kDave), Value::Int64(testing_util::kAlice),
       Value::String("viewed record")}));
  EBA_ASSERT_OK(db.AllowSelfJoin(AttrId{"Log", "Patient"}));
  EBA_ASSERT_OK(db.AllowSelfJoin(AttrId{"Log", "User"}));

  MinerOptions options = ToyOptions(0.3);
  MiningResult result = UnwrapOrDie(TemplateMiner(&db, options).MineOneWay());
  bool found_repeat = false;
  for (const auto& mined : result.templates) {
    bool all_log = true;
    for (const auto& var : mined.tmpl.query().vars) {
      if (var.table != "Log") all_log = false;
    }
    if (all_log && mined.tmpl.RawLength() == 2) found_repeat = true;
  }
  EXPECT_TRUE(found_repeat);
}

TEST(MinerTest, InvalidOptionsRejected) {
  Database db = BuildPaperToyDatabase();
  MinerOptions options = ToyOptions(0.5);
  options.log_table = "Nope";
  EXPECT_FALSE(TemplateMiner(&db, options).MineOneWay().ok());

  MinerOptions bad_bridge = ToyOptions(0.5);
  EXPECT_FALSE(TemplateMiner(&db, bad_bridge).MineBridged(1).ok());
}

TEST(MinerTest, ExcludedTablesNotTraversed) {
  Database db = BuildPaperToyDatabase();
  MinerOptions options = ToyOptions(0.5);
  options.excluded_tables = {"Doctor_Info"};
  MiningResult result = UnwrapOrDie(TemplateMiner(&db, options).MineOneWay());
  for (const auto& mined : result.templates) {
    for (const auto& var : mined.tmpl.query().vars) {
      EXPECT_NE(var.table, "Doctor_Info");
    }
  }
}

}  // namespace
}  // namespace eba
