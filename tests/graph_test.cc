// Unit tests for src/graph: schema-graph edges and restricted simple paths,
// the §4.1 user collaboration graph (checked against the paper's worked
// Example 4.1), modularity clustering, and the group hierarchy.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/hierarchy.h"
#include "graph/modularity.h"
#include "graph/schema_graph.h"
#include "graph/user_graph.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::BuildPaperToyDatabase;
using testing_util::UnwrapOrDie;

// --------------------------- SchemaGraph ---------------------------

TEST(SchemaGraphTest, DomainEdgesGenerated) {
  Database db = BuildPaperToyDatabase();
  SchemaGraph graph = UnwrapOrDie(SchemaGraph::Build(db));
  // patient domain: Log.Patient <-> Appointments.Patient (both directions).
  auto from_start = graph.EdgesFrom(AttrId{"Log", "Patient"});
  ASSERT_EQ(from_start.size(), 1u);
  EXPECT_EQ(from_start[0].to, (AttrId{"Appointments", "Patient"}));
  // user domain: Log.User, Appointments.Doctor, Doctor_Info.Doctor.
  auto to_user = graph.EdgesTo(AttrId{"Log", "User"});
  EXPECT_EQ(to_user.size(), 2u);
  // dept self-join edge present.
  bool found_self = false;
  for (const auto& e : graph.edges()) {
    if (e.IsSelfJoin() &&
        e.from == (AttrId{"Doctor_Info", "Department"})) {
      found_self = true;
      EXPECT_EQ(e.from, e.to);
    }
  }
  EXPECT_TRUE(found_self);
}

TEST(SchemaGraphTest, ExcludedTablesHaveNoEdges) {
  Database db = BuildPaperToyDatabase();
  SchemaGraph graph = UnwrapOrDie(SchemaGraph::Build(db, {"Doctor_Info"}));
  for (const auto& e : graph.edges()) {
    EXPECT_NE(e.from.table, "Doctor_Info");
    EXPECT_NE(e.to.table, "Doctor_Info");
  }
}

TEST(SchemaGraphTest, AdminRelationshipAddsEdge) {
  Database db = BuildPaperToyDatabase();
  EBA_ASSERT_OK(db.AddAdminRelationship(AttrId{"Appointments", "Date"},
                                        AttrId{"Log", "Date"}));
  SchemaGraph graph = UnwrapOrDie(SchemaGraph::Build(db));
  EXPECT_EQ(graph.EdgesFrom(AttrId{"Appointments", "Date"}).size(), 1u);
}

// --------------------------- Paths ---------------------------

class PathTest : public ::testing::Test {
 protected:
  PathTest() : db_(BuildPaperToyDatabase()) {
    rules_.start = AttrId{"Log", "Patient"};
    rules_.end = AttrId{"Log", "User"};
    rules_.max_length = 5;
    rules_.max_tables = 3;
  }

  JoinEdge E(const std::string& t1, const std::string& c1,
             const std::string& t2, const std::string& c2) {
    return JoinEdge{AttrId{t1, c1}, AttrId{t2, c2}};
  }

  Database db_;
  PathRules rules_;
};

TEST_F(PathTest, TemplateAPathIsExplanation) {
  MiningPath path({E("Log", "Patient", "Appointments", "Patient"),
                   E("Appointments", "Doctor", "Log", "User")});
  EXPECT_TRUE(IsRestrictedSimplePath(db_, rules_, path, true));
  EXPECT_TRUE(IsExplanationPath(db_, rules_, path));
}

TEST_F(PathTest, TemplateBPathIsExplanation) {
  MiningPath path({E("Log", "Patient", "Appointments", "Patient"),
                   E("Appointments", "Doctor", "Doctor_Info", "Doctor"),
                   E("Doctor_Info", "Department", "Doctor_Info", "Department"),
                   E("Doctor_Info", "Doctor", "Log", "User")});
  EXPECT_TRUE(IsExplanationPath(db_, rules_, path));
}

TEST_F(PathTest, PartialForwardPathValidButNotExplanation) {
  MiningPath path({E("Log", "Patient", "Appointments", "Patient")});
  EXPECT_TRUE(IsRestrictedSimplePath(db_, rules_, path, true));
  EXPECT_FALSE(IsExplanationPath(db_, rules_, path));
}

TEST_F(PathTest, BackwardPathAnchorsAtEnd) {
  MiningPath path({E("Appointments", "Doctor", "Log", "User")});
  EXPECT_TRUE(IsRestrictedSimplePath(db_, rules_, path, false));
  EXPECT_FALSE(IsRestrictedSimplePath(db_, rules_, path, true));
}

TEST_F(PathTest, PassThroughOnSingleNodeRejected) {
  // Enter and leave Appointments on the same attribute: not simple.
  MiningPath path({E("Log", "Patient", "Appointments", "Patient"),
                   E("Appointments", "Patient", "Log", "Patient")});
  EXPECT_FALSE(IsRestrictedSimplePath(db_, rules_, path, true));
}

TEST_F(PathTest, EdgeReuseRejected) {
  MiningPath path({E("Log", "Patient", "Appointments", "Patient"),
                   E("Appointments", "Patient", "Log", "Patient"),
                   E("Log", "Patient", "Appointments", "Patient")});
  EXPECT_FALSE(IsRestrictedSimplePath(db_, rules_, path, true));
}

TEST_F(PathTest, SelfJoinWithoutAllowanceRejected) {
  // Doctor_Info.Doctor self-join was never allowed.
  MiningPath path({E("Log", "Patient", "Appointments", "Patient"),
                   E("Appointments", "Doctor", "Doctor_Info", "Doctor"),
                   E("Doctor_Info", "Doctor", "Doctor_Info", "Doctor"),
                   E("Doctor_Info", "Doctor", "Log", "User")});
  EXPECT_FALSE(IsExplanationPath(db_, rules_, path));
}

TEST_F(PathTest, LogSelfJoinRequiresAllowance) {
  MiningPath repeat({E("Log", "Patient", "Log", "Patient"),
                     E("Log", "User", "Log", "User")});
  EXPECT_FALSE(IsExplanationPath(db_, rules_, repeat));
  EBA_ASSERT_OK(db_.AllowSelfJoin(AttrId{"Log", "Patient"}));
  EBA_ASSERT_OK(db_.AllowSelfJoin(AttrId{"Log", "User"}));
  EXPECT_TRUE(IsExplanationPath(db_, rules_, repeat));
}

TEST_F(PathTest, LengthBudgetEnforced) {
  rules_.max_length = 3;
  MiningPath path({E("Log", "Patient", "Appointments", "Patient"),
                   E("Appointments", "Doctor", "Doctor_Info", "Doctor"),
                   E("Doctor_Info", "Department", "Doctor_Info", "Department"),
                   E("Doctor_Info", "Doctor", "Log", "User")});
  EXPECT_FALSE(IsExplanationPath(db_, rules_, path));
}

TEST_F(PathTest, TableBudgetEnforced) {
  rules_.max_tables = 2;  // Log + Appointments only
  MiningPath path({E("Log", "Patient", "Appointments", "Patient"),
                   E("Appointments", "Doctor", "Doctor_Info", "Doctor"),
                   E("Doctor_Info", "Department", "Doctor_Info", "Department"),
                   E("Doctor_Info", "Doctor", "Log", "User")});
  EXPECT_FALSE(IsExplanationPath(db_, rules_, path));
  MiningPath short_path({E("Log", "Patient", "Appointments", "Patient"),
                         E("Appointments", "Doctor", "Log", "User")});
  EXPECT_TRUE(IsExplanationPath(db_, rules_, short_path));
}

TEST_F(PathTest, MappingTableExemptFromBudgets) {
  EBA_ASSERT_OK(db_.MarkMappingTable("Doctor_Info"));
  rules_.max_tables = 2;
  MiningPath path({E("Log", "Patient", "Appointments", "Patient"),
                   E("Appointments", "Doctor", "Doctor_Info", "Doctor"),
                   E("Doctor_Info", "Department", "Doctor_Info", "Department"),
                   E("Doctor_Info", "Doctor", "Log", "User")});
  // Doctor_Info no longer counts toward T (2 counted: Log, Appointments).
  EXPECT_TRUE(IsExplanationPath(db_, rules_, path));
}

TEST_F(PathTest, CanonicalKeyInvariantUnderReversal) {
  MiningPath fwd({E("Log", "Patient", "Appointments", "Patient"),
                  E("Appointments", "Doctor", "Log", "User")});
  MiningPath rev({E("Log", "User", "Appointments", "Doctor"),
                  E("Appointments", "Patient", "Log", "Patient")});
  EXPECT_EQ(fwd.CanonicalKey(), rev.CanonicalKey());
  MiningPath other({E("Log", "Patient", "Appointments", "Patient")});
  EXPECT_NE(fwd.CanonicalKey(), other.CanonicalKey());
}

TEST_F(PathTest, PathToQueryProducesValidQuery) {
  MiningPath path({E("Log", "Patient", "Appointments", "Patient"),
                   E("Appointments", "Doctor", "Log", "User")});
  PathQuery q = UnwrapOrDie(PathToQuery(db_, rules_, path));
  EXPECT_EQ(q.vars.size(), 2u);  // Log closes back to variable 0
  EXPECT_EQ(q.vars[0].alias, "L");
  EXPECT_EQ(q.join_chain.size(), 2u);
  // Final condition ties back to variable 0.
  EXPECT_EQ(q.join_chain[1].rhs.var, 0);
}

TEST_F(PathTest, PathToQuerySelfJoinAliases) {
  EBA_ASSERT_OK(db_.AllowSelfJoin(AttrId{"Log", "Patient"}));
  EBA_ASSERT_OK(db_.AllowSelfJoin(AttrId{"Log", "User"}));
  MiningPath repeat({E("Log", "Patient", "Log", "Patient"),
                     E("Log", "User", "Log", "User")});
  PathQuery q = UnwrapOrDie(PathToQuery(db_, rules_, repeat));
  ASSERT_EQ(q.vars.size(), 2u);
  EXPECT_EQ(q.vars[1].alias, "L2");
  EXPECT_EQ(q.vars[1].table, "Log");
}

// --------------------------- UserGraph (Example 4.1) ---------------------------

/// Builds the log of Figure 5: patients A,B,C,D accessed by user sets
/// {0,1,2}, {0,2}, {1,2}, {2,3}.
Table MakeFigure5Log() {
  Table log(AccessLog::StandardSchema("Log"));
  struct Access {
    int64_t patient;
    int64_t user;
  };
  const Access accesses[] = {{1, 0}, {1, 1}, {1, 2}, {2, 0}, {2, 2},
                             {3, 1}, {3, 2}, {4, 2}, {4, 3}};
  int64_t lid = 1;
  for (const auto& a : accesses) {
    Status s = log.AppendRow({Value::Int64(lid), Value::Timestamp(lid * 60),
                              Value::Int64(a.user), Value::Int64(a.patient),
                              Value::String("viewed")});
    EBA_CHECK(s.ok());
    ++lid;
  }
  return log;
}

TEST(UserGraphTest, Figure5Weights) {
  Table table = MakeFigure5Log();
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(&table));
  UserGraph graph = UnwrapOrDie(UserGraph::Build(log));
  ASSERT_EQ(graph.num_users(), 4u);

  auto idx = [&](int64_t uid) {
    int i = graph.NodeIndex(uid);
    EBA_CHECK(i >= 0);
    return static_cast<size_t>(i);
  };
  // W[0,1] = 1/9 (patient A only) = 0.11
  EXPECT_NEAR(graph.EdgeWeight(idx(0), idx(1)), 1.0 / 9.0, 1e-9);
  // W[0,2] = 1/9 + 1/4 = 0.36
  EXPECT_NEAR(graph.EdgeWeight(idx(0), idx(2)), 1.0 / 9.0 + 0.25, 1e-9);
  // W[1,2] = 1/9 + 1/4 = 0.36
  EXPECT_NEAR(graph.EdgeWeight(idx(1), idx(2)), 1.0 / 9.0 + 0.25, 1e-9);
  // W[2,3] = 1/4 = 0.25
  EXPECT_NEAR(graph.EdgeWeight(idx(2), idx(3)), 0.25, 1e-9);
  // No edge between 0 and 3 or 1 and 3.
  EXPECT_EQ(graph.EdgeWeight(idx(0), idx(3)), 0.0);
  EXPECT_EQ(graph.EdgeWeight(idx(1), idx(3)), 0.0);
  // Duplicate accesses must not change weights (binary access model).
  EXPECT_EQ(graph.NumEdges(), 4u);
}

TEST(UserGraphTest, RepeatAccessesDoNotChangeWeights) {
  Table table = MakeFigure5Log();
  // user 0 accesses patient 1 again.
  EBA_ASSERT_OK(table.AppendRow({Value::Int64(99), Value::Timestamp(9999),
                                 Value::Int64(0), Value::Int64(1),
                                 Value::String("viewed")}));
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(&table));
  UserGraph graph = UnwrapOrDie(UserGraph::Build(log));
  auto idx = [&](int64_t uid) {
    return static_cast<size_t>(graph.NodeIndex(uid));
  };
  EXPECT_NEAR(graph.EdgeWeight(idx(0), idx(1)), 1.0 / 9.0, 1e-9);
}

TEST(UserGraphTest, BuildFromRowsSubset) {
  Table table = MakeFigure5Log();
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(&table));
  // Only patient A's accesses (rows 0-2).
  UserGraph graph = UnwrapOrDie(UserGraph::BuildFromRows(log, {0, 1, 2}));
  EXPECT_EQ(graph.num_users(), 3u);
  EXPECT_EQ(graph.NodeIndex(3), -1);
}

// --------------------------- Modularity ---------------------------

/// Two 4-cliques connected by one weak edge.
WeightedGraph TwoCliques() {
  WeightedGraph g;
  g.adjacency.resize(8);
  g.self_loops.assign(8, 0.0);
  auto add = [&](uint32_t a, uint32_t b, double w) {
    g.adjacency[a].emplace_back(b, w);
    g.adjacency[b].emplace_back(a, w);
  };
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = i + 1; j < 4; ++j) {
      add(i, j, 1.0);
      add(i + 4, j + 4, 1.0);
    }
  }
  add(0, 4, 0.05);
  return g;
}

TEST(ModularityTest, RecoversTwoCliques) {
  Clustering c = ClusterGraph(TwoCliques());
  EXPECT_EQ(c.num_clusters, 2);
  // All of 0-3 together, all of 4-7 together.
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(c.assignment[static_cast<size_t>(i)], c.assignment[0]);
    EXPECT_EQ(c.assignment[static_cast<size_t>(i + 4)], c.assignment[4]);
  }
  EXPECT_NE(c.assignment[0], c.assignment[4]);
  EXPECT_GT(c.modularity, 0.3);
}

TEST(ModularityTest, ComputeModularityMatchesDefinition) {
  WeightedGraph g = TwoCliques();
  // All in one cluster: Q = sum_in/2m - 1 = 0 (single community covers all).
  std::vector<int> one(8, 0);
  EXPECT_NEAR(ComputeModularity(g, one), 0.0, 1e-9);
  // Perfect split beats the single community.
  std::vector<int> split = {0, 0, 0, 0, 1, 1, 1, 1};
  EXPECT_GT(ComputeModularity(g, split), 0.3);
}

TEST(ModularityTest, EmptyAndSingletonGraphs) {
  WeightedGraph empty;
  Clustering c = ClusterGraph(empty);
  EXPECT_EQ(c.num_clusters, 0);

  WeightedGraph single;
  single.adjacency.resize(1);
  single.self_loops.assign(1, 0.0);
  Clustering c1 = ClusterGraph(single);
  EXPECT_EQ(c1.num_clusters, 1);
}

TEST(ModularityTest, DeterministicForSeed) {
  WeightedGraph g = TwoCliques();
  LouvainOptions opts;
  opts.seed = 99;
  Clustering a = ClusterGraph(g, opts);
  Clustering b = ClusterGraph(g, opts);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(ModularityTest, InduceSubgraph) {
  WeightedGraph g = TwoCliques();
  WeightedGraph sub = g.Induce({0, 1, 2, 3});
  EXPECT_EQ(sub.num_nodes(), 4u);
  // Each node keeps its 3 intra-clique edges; the weak bridge is dropped.
  EXPECT_EQ(sub.adjacency[0].size(), 3u);
}

// --------------------------- Hierarchy ---------------------------

TEST(HierarchyTest, DepthZeroIsGlobalGroup) {
  Table table = MakeFigure5Log();
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(&table));
  UserGraph graph = UnwrapOrDie(UserGraph::Build(log));
  HierarchyOptions options;
  options.max_depth = 2;
  GroupHierarchy h = UnwrapOrDie(GroupHierarchy::Build(graph, options));
  auto depth0 = h.GroupsAtDepth(0);
  ASSERT_EQ(depth0.size(), 1u);
  EXPECT_EQ(depth0[0]->users.size(), 4u);
}

TEST(HierarchyTest, EveryDepthPartitionsAllUsers) {
  Table table = MakeFigure5Log();
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(&table));
  UserGraph graph = UnwrapOrDie(UserGraph::Build(log));
  HierarchyOptions options;
  options.max_depth = 4;
  options.min_cluster_size = 2;
  GroupHierarchy h = UnwrapOrDie(GroupHierarchy::Build(graph, options));
  for (int depth = 0; depth <= h.max_depth(); ++depth) {
    size_t covered = 0;
    std::set<int64_t> seen;
    for (const GroupNode* g : h.GroupsAtDepth(depth)) {
      covered += g->users.size();
      seen.insert(g->users.begin(), g->users.end());
    }
    EXPECT_EQ(covered, graph.num_users()) << "depth " << depth;
    EXPECT_EQ(seen.size(), graph.num_users()) << "depth " << depth;
  }
}

TEST(HierarchyTest, GroupIdsGloballyUnique) {
  Table table = MakeFigure5Log();
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(&table));
  UserGraph graph = UnwrapOrDie(UserGraph::Build(log));
  GroupHierarchy h = UnwrapOrDie(GroupHierarchy::Build(graph));
  std::set<int64_t> ids;
  for (const auto& node : h.nodes()) {
    EXPECT_TRUE(ids.insert(node.group_id).second);
  }
}

TEST(HierarchyTest, GroupOfFindsUser) {
  Table table = MakeFigure5Log();
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(&table));
  UserGraph graph = UnwrapOrDie(UserGraph::Build(log));
  GroupHierarchy h = UnwrapOrDie(GroupHierarchy::Build(graph));
  const GroupNode* g = h.GroupOf(0, 0);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->depth, 0);
  EXPECT_EQ(h.GroupOf(12345, 0), nullptr);
}

TEST(HierarchyTest, ToGroupsTableSchemaAndContent) {
  Table table = MakeFigure5Log();
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(&table));
  UserGraph graph = UnwrapOrDie(UserGraph::Build(log));
  HierarchyOptions options;
  options.max_depth = 2;
  GroupHierarchy h = UnwrapOrDie(GroupHierarchy::Build(graph, options));
  Table groups =
      UnwrapOrDie(h.ToGroupsTable("Groups", /*include_depth_zero=*/true));
  EXPECT_EQ(groups.schema().ColumnIndex("Group_Depth"), 0);
  EXPECT_EQ(groups.schema().ColumnIndex("Group_id"), 1);
  EXPECT_EQ(groups.schema().ColumnIndex("User"), 2);
  EXPECT_EQ(groups.schema().column(1).domain, "group");
  EXPECT_EQ(groups.schema().column(2).domain, "user");
  size_t expected = 0;
  for (const auto& node : h.nodes()) expected += node.users.size();
  EXPECT_EQ(groups.num_rows(), expected);

  // By default the depth-0 all-users baseline group is excluded.
  Table without = UnwrapOrDie(h.ToGroupsTable("Groups2"));
  EXPECT_EQ(without.num_rows(), expected - graph.num_users());
  for (size_t r = 0; r < without.num_rows(); ++r) {
    EXPECT_GE(without.Get(r, 0).AsInt64(), 1);
  }
}

TEST(HierarchyTest, AssignNewUsersJoinsStrongestTiesWithoutReclustering) {
  Table table = MakeFigure5Log();
  {
    AccessLog log = UnwrapOrDie(AccessLog::Wrap(&table));
    UserGraph graph = UnwrapOrDie(UserGraph::Build(log));
    GroupHierarchy h = UnwrapOrDie(GroupHierarchy::Build(graph));

    // The log grows: user 4 repeatedly co-accesses with user 3 (and nobody
    // else), user 5 only touches a record nobody else ever opened.
    int64_t lid = 100;
    auto append = [&](int64_t patient, int64_t user) {
      EBA_CHECK(table
                    .AppendRow({Value::Int64(lid), Value::Timestamp(lid * 60),
                                Value::Int64(user), Value::Int64(patient),
                                Value::String("viewed")})
                    .ok());
      ++lid;
    };
    append(10, 3);
    append(10, 4);
    append(11, 3);
    append(11, 4);
    append(99, 5);
    AccessLog grown = UnwrapOrDie(AccessLog::Wrap(&table));
    UserGraph regrown = UnwrapOrDie(UserGraph::Build(grown));

    const std::set<int64_t> ids_before = [&h] {
      std::set<int64_t> ids;
      for (const auto& node : h.nodes()) ids.insert(node.group_id);
      return ids;
    }();
    std::vector<GroupAssignment> rows =
        h.AssignNewUsers(regrown, regrown.user_ids());

    // User 4 joined user 3's existing group at every assigned depth — no new
    // group was minted, no existing membership moved.
    ASSERT_FALSE(rows.empty());
    for (const auto& a : rows) {
      EXPECT_EQ(a.user, 4);
      EXPECT_GE(a.depth, 1);
      EXPECT_TRUE(ids_before.count(a.group_id)) << a.group_id;
    }
    ASSERT_NE(h.GroupOf(4, 1), nullptr);
    EXPECT_EQ(h.GroupOf(4, 1), h.GroupOf(3, 1));

    // The isolated user lands only in the depth-0 global group.
    EXPECT_NE(h.GroupOf(5, 0), nullptr);
    EXPECT_EQ(h.GroupOf(5, 1), nullptr);

    // Idempotent: everyone is present now, nothing left to assign.
    EXPECT_TRUE(h.AssignNewUsers(regrown, regrown.user_ids()).empty());
  }
}

}  // namespace
}  // namespace eba
