// End-to-end integration tests: generate the synthetic hospital, build
// collaborative groups, register hand-crafted templates, mine templates,
// and validate the paper's headline claims hold qualitatively on the
// synthetic data (events exist for ~all accesses; direct + group + repeat
// templates explain the overwhelming majority; mined templates match the
// hand-crafted ones; fake accesses are rarely explained).

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <unordered_set>

#include "careweb/generator.h"
#include "careweb/workload.h"
#include "core/auditor.h"
#include "core/metrics.h"
#include "core/miner.h"
#include "log/access_log.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::UnwrapOrDie;

/// One shared, fully prepared environment (expensive pieces run once).
class IntegrationEnv {
 public:
  static IntegrationEnv& Get() {
    static IntegrationEnv* env = new IntegrationEnv();
    return *env;
  }

  CareWebData data;
  GroupHierarchy hierarchy;
  LogSlice train_first;  // first accesses, days 1-6
  LogSlice test_first;   // first accesses, day 7
  EvalLogSetup eval;     // day-7 first accesses + fake
  MiningResult mined;

 private:
  IntegrationEnv()
      : data(UnwrapOrDie(GenerateCareWeb(CareWebConfig::Tiny()))),
        hierarchy(UnwrapOrDie(BuildGroupsFromDays(
            &data.db, "Log", 1, 6, "Groups", HierarchyOptions{}))),
        train_first(UnwrapOrDie(
            AddLogSlice(&data.db, "Log", "TrainFirst", 1, 6, true))),
        test_first(UnwrapOrDie(
            AddLogSlice(&data.db, "Log", "TestFirst", 7, 7, true))),
        eval(UnwrapOrDie(AddEvalLog(&data.db, "TestFirst", "EvalLog",
                                    data.truth, 4242))) {
    MinerOptions options;
    options.log_table = "TrainFirst";
    options.support_fraction = 0.02;
    options.max_length = 5;
    options.max_tables = 3;
    options.excluded_tables = ExcludedLogsFor(data.db, "TrainFirst");
    mined = UnwrapOrDie(TemplateMiner(&data.db, options).MineOneWay());
  }
};

TEST(IntegrationTest, MostAccessesHaveEvents) {
  IntegrationEnv& env = IntegrationEnv::Get();
  MetricsEvaluator evaluator(&env.data.db, "Log");
  auto with_event = UnwrapOrDie(evaluator.LidsWithAnyEvent(AllEventTables()));
  const Table* log = env.data.db.GetTable("Log").value();
  AccessLog access_log = UnwrapOrDie(AccessLog::Wrap(log));
  std::unordered_set<int64_t> event_set(with_event.begin(), with_event.end());
  size_t covered = 0;
  for (size_t r = 0; r < access_log.size(); ++r) {
    if (event_set.count(access_log.Get(r).lid)) ++covered;
  }
  double frac =
      static_cast<double>(covered) / static_cast<double>(access_log.size());
  // Paper Figure 6: ~97% of accesses correspond to a patient with an event.
  EXPECT_GT(frac, 0.85);
}

TEST(IntegrationTest, HeadlineCoverageWithGroupsAndRepeat) {
  IntegrationEnv& env = IntegrationEnv::Get();
  Database& db = env.data.db;
  ExplanationEngine engine = UnwrapOrDie(ExplanationEngine::Create(&db, "Log"));
  for (auto& tmpl : UnwrapOrDie(TemplatesHandcraftedDirect(db, true))) {
    EBA_ASSERT_OK(engine.AddTemplate(tmpl));
  }
  for (auto& tmpl : UnwrapOrDie(TemplatesDataSetB(db))) {
    EBA_ASSERT_OK(engine.AddTemplate(tmpl));
  }
  for (auto& tmpl : UnwrapOrDie(TemplatesGroups(db, 1, true))) {
    EBA_ASSERT_OK(engine.AddTemplate(tmpl));
  }
  ExplanationReport report = UnwrapOrDie(engine.ExplainAll());
  // Paper headline: >94% of all accesses explained. The tiny config is
  // noisier; require a strong majority and confirm unexplained accesses are
  // dominated by ground-truth noise.
  EXPECT_GT(report.Coverage(), 0.80);

  size_t noise = 0;
  for (int64_t lid : report.unexplained_lids) {
    const std::string& reason = env.data.truth.access_reason.at(lid);
    if (reason == "random" || reason == "missing_event") ++noise;
  }
  EXPECT_GT(static_cast<double>(noise) /
                static_cast<double>(report.unexplained_lids.size()),
            0.3);
}

TEST(IntegrationTest, GroupTemplatesBoostFirstAccessRecall) {
  IntegrationEnv& env = IntegrationEnv::Get();
  Database& db = env.data.db;
  MetricsEvaluator evaluator(&db, "EvalLog");

  auto direct = UnwrapOrDie(TemplatesHandcraftedDirect(db, false));
  PrecisionRecall direct_pr = UnwrapOrDie(evaluator.Evaluate(
      direct, env.eval.real_lids, env.eval.fake_lids, env.eval.real_lids));

  auto with_groups = direct;
  for (auto& tmpl : UnwrapOrDie(TemplatesGroups(db, 1, true))) {
    with_groups.push_back(tmpl);
  }
  PrecisionRecall group_pr = UnwrapOrDie(evaluator.Evaluate(
      with_groups, env.eval.real_lids, env.eval.fake_lids,
      env.eval.real_lids));

  // Figure 12's shape: groups raise recall substantially over direct
  // templates on first accesses, while precision stays high.
  EXPECT_GT(group_pr.Recall(), direct_pr.Recall() + 0.1);
  EXPECT_GT(group_pr.Precision(), 0.7);
}

TEST(IntegrationTest, ShallowDepthTradesPrecisionForRecall) {
  // Figure 12's qualitative trend: shallower groups (coarser clusters)
  // explain more accesses but admit more false positives than deep groups.
  IntegrationEnv& env = IntegrationEnv::Get();
  Database& db = env.data.db;
  MetricsEvaluator evaluator(&db, "EvalLog");
  int deepest = env.hierarchy.max_depth();
  ASSERT_GE(deepest, 2);
  auto shallow = UnwrapOrDie(TemplatesGroups(db, 1, true));
  auto deep = UnwrapOrDie(TemplatesGroups(db, deepest, true));
  PrecisionRecall pr_shallow = UnwrapOrDie(evaluator.Evaluate(
      shallow, env.eval.real_lids, env.eval.fake_lids, env.eval.real_lids));
  PrecisionRecall pr_deep = UnwrapOrDie(evaluator.Evaluate(
      deep, env.eval.real_lids, env.eval.fake_lids, env.eval.real_lids));
  EXPECT_GE(pr_shallow.Recall(), pr_deep.Recall());
  EXPECT_LE(pr_deep.fake_explained, pr_shallow.fake_explained);
}

TEST(IntegrationTest, MinerRecoversHandcraftedTemplates) {
  IntegrationEnv& env = IntegrationEnv::Get();
  Database& db = env.data.db;

  std::set<std::string> mined_keys;
  for (const auto& mined : env.mined.templates) {
    mined_keys.insert(UnwrapOrDie(mined.tmpl.CanonicalKey(db)));
  }
  ASSERT_FALSE(mined_keys.empty());

  // The appointment-with-doctor template must be discovered (§5.3.3: the
  // miner found all supported hand-crafted templates).
  ExplanationTemplate appt = UnwrapOrDie(TemplateApptWithDoctor(db));
  EXPECT_TRUE(mined_keys.count(UnwrapOrDie(appt.CanonicalKey(db))));

  // Group-based templates are discovered too.
  bool mined_group_template = false;
  for (const auto& mined : env.mined.templates) {
    for (const auto& var : mined.tmpl.query().vars) {
      if (var.table == "Groups") mined_group_template = true;
    }
  }
  EXPECT_TRUE(mined_group_template);
}

TEST(IntegrationTest, MinedTemplatesRespectBudgets) {
  IntegrationEnv& env = IntegrationEnv::Get();
  Database& db = env.data.db;
  for (const auto& mined : env.mined.templates) {
    EXPECT_LE(mined.tmpl.RawLength(), 5);
    EXPECT_LE(mined.tmpl.CountedTables(db), 3);
    EXPECT_GE(static_cast<double>(mined.support),
              env.mined.support_threshold);
  }
}

TEST(IntegrationTest, MinedTemplatesGeneralizeToDay7) {
  IntegrationEnv& env = IntegrationEnv::Get();
  Database& db = env.data.db;
  MetricsEvaluator evaluator(&db, "EvalLog");
  std::vector<ExplanationTemplate> all;
  std::vector<ExplanationTemplate> length2;
  for (const auto& mined : env.mined.templates) {
    all.push_back(mined.tmpl);
    if (mined.tmpl.ReportedLength(db) == 2) length2.push_back(mined.tmpl);
  }
  ASSERT_FALSE(length2.empty());

  // Figure 14's qualitative shape. Short templates are near-exact: a fake
  // access almost never coincides with a real appointment/order. The union
  // of all templates trades precision for recall; at the tiny config's
  // user-patient density (~0.13 vs the paper's 0.0003) union precision is
  // structurally depressed, so only a loose bound is meaningful here — the
  // paper-scale shape is regenerated by bench_fig14_predictive.
  PrecisionRecall pr2 = UnwrapOrDie(evaluator.Evaluate(
      length2, env.eval.real_lids, env.eval.fake_lids, env.eval.real_lids));
  EXPECT_GT(pr2.Precision(), 0.75);

  PrecisionRecall pr_all = UnwrapOrDie(evaluator.Evaluate(
      all, env.eval.real_lids, env.eval.fake_lids, env.eval.real_lids));
  EXPECT_GT(pr_all.Recall(), pr2.Recall());
  EXPECT_GT(pr_all.Recall(), 0.4);
  EXPECT_GT(pr_all.Precision(), 0.3);
  EXPECT_LE(pr_all.Precision(), pr2.Precision());
}

TEST(IntegrationTest, AuditorEndToEnd) {
  // Use a private copy since the auditor mutates the database (Groups).
  CareWebData data = UnwrapOrDie(GenerateCareWeb(CareWebConfig::Tiny()));
  Auditor auditor = UnwrapOrDie(Auditor::Create(&data.db));
  EBA_ASSERT_OK(auditor.BuildCollaborativeGroups());
  ASSERT_TRUE(auditor.hierarchy().has_value());

  for (auto& tmpl :
       UnwrapOrDie(TemplatesHandcraftedDirect(data.db, true))) {
    EBA_ASSERT_OK(auditor.AddTemplate(tmpl));
  }
  for (auto& tmpl : UnwrapOrDie(TemplatesGroups(data.db, 1, true))) {
    EBA_ASSERT_OK(auditor.AddTemplate(tmpl));
  }

  // Pick an explained access from ground truth (a doctor's appointment
  // access) and audit that patient.
  const Table* log = data.db.GetTable("Log").value();
  AccessLog access_log = UnwrapOrDie(AccessLog::Wrap(log));
  int64_t target_patient = -1;
  for (size_t r = 0; r < access_log.size(); ++r) {
    AccessLog::Entry e = access_log.Get(r);
    if (data.truth.access_reason.at(e.lid) == "appt_doctor") {
      target_patient = e.patient;
      break;
    }
  }
  ASSERT_GT(target_patient, 0);

  auto entries = UnwrapOrDie(auditor.AuditPatient(target_patient));
  ASSERT_FALSE(entries.empty());
  bool any_explained = false;
  for (const auto& entry : entries) {
    EXPECT_EQ(entry.access.patient, target_patient);
    if (!entry.explanations.empty()) any_explained = true;
  }
  EXPECT_TRUE(any_explained);

  ExplanationReport report = UnwrapOrDie(auditor.FindUnexplained());
  EXPECT_GT(report.Coverage(), 0.5);

  // Template persistence: save the registered set, reload into a fresh
  // auditor, and verify it reproduces the coverage.
  std::string path = ::testing::TempDir() + "/eba_auditor_catalog.txt";
  EBA_ASSERT_OK(auditor.SaveTemplates(path));
  Auditor reloaded = UnwrapOrDie(Auditor::Create(&data.db));
  EBA_ASSERT_OK(reloaded.LoadTemplates(path));
  EXPECT_EQ(reloaded.engine().num_templates(),
            auditor.engine().num_templates());
  ExplanationReport report2 = UnwrapOrDie(reloaded.FindUnexplained());
  EXPECT_EQ(report2.explained_lids.size(), report.explained_lids.size());
  std::remove(path.c_str());
}

TEST(IntegrationTest, FakeAccessesRarelyExplainedByDirectTemplates) {
  IntegrationEnv& env = IntegrationEnv::Get();
  Database& db = env.data.db;
  MetricsEvaluator evaluator(&db, "EvalLog");
  auto direct = UnwrapOrDie(TemplatesHandcraftedDirect(db, false));
  PrecisionRecall pr = UnwrapOrDie(evaluator.Evaluate(
      direct, env.eval.real_lids, env.eval.fake_lids, env.eval.real_lids));
  // Length-2 templates have near-perfect precision (Figure 14).
  EXPECT_GT(pr.Precision(), 0.9);
}

}  // namespace
}  // namespace eba
