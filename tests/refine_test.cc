// Tests for decorated-template refinement (the §5.3.4 future-work feature):
// depth decorations are applied correctly, the precision target drives the
// depth choice, and non-group templates pass through untouched.

#include <gtest/gtest.h>

#include "careweb/generator.h"
#include "careweb/workload.h"
#include "core/refine.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::UnwrapOrDie;

/// Shared refinement environment: tiny hospital + groups + validation log
/// over day-7 first accesses.
class RefineEnv {
 public:
  static RefineEnv& Get() {
    static RefineEnv* env = new RefineEnv();
    return *env;
  }

  CareWebData data;
  GroupHierarchy hierarchy;
  EvalLogSetup eval;

  RefineOptions Options(double precision_target) const {
    RefineOptions options;
    options.validation_log_table = "EvalLog";
    options.real_lids = eval.real_lids;
    options.fake_lids = eval.fake_lids;
    options.precision_target = precision_target;
    return options;
  }

 private:
  RefineEnv()
      : data(UnwrapOrDie(GenerateCareWeb(CareWebConfig::Tiny()))),
        hierarchy(UnwrapOrDie(BuildGroupsFromDays(
            &data.db, "Log", 1, 6, "Groups", HierarchyOptions{}))),
        eval(UnwrapOrDie([this] {
          auto slice = AddLogSlice(&data.db, "Log", "TestFirst", 7, 7, true);
          EBA_CHECK_MSG(slice.ok(), slice.status().ToString());
          return AddEvalLog(&data.db, "TestFirst", "EvalLog", data.truth, 808);
        }())) {}
};

TEST(RefineTest, UsesGroupsDetection) {
  RefineEnv& env = RefineEnv::Get();
  auto group_templates = UnwrapOrDie(TemplatesGroups(env.data.db, -1, false));
  EXPECT_TRUE(UsesGroups(group_templates[0], "Groups"));
  ExplanationTemplate appt = UnwrapOrDie(TemplateApptWithDoctor(env.data.db));
  EXPECT_FALSE(UsesGroups(appt, "Groups"));
}

TEST(RefineTest, NonGroupTemplatePassesThrough) {
  RefineEnv& env = RefineEnv::Get();
  ExplanationTemplate appt = UnwrapOrDie(TemplateApptWithDoctor(env.data.db));
  RefinedTemplate refined = UnwrapOrDie(
      RefineGroupDepth(env.data.db, appt, env.Options(0.5)));
  EXPECT_FALSE(refined.chosen_depth.has_value());
  EXPECT_EQ(refined.tmpl.name(), "appt_with_doctor");
  // Direct appointment templates are near-exact on fake logs.
  EXPECT_TRUE(refined.meets_target);
}

TEST(RefineTest, LooseTargetKeepsUndecoratedTemplate) {
  RefineEnv& env = RefineEnv::Get();
  auto group_templates = UnwrapOrDie(TemplatesGroups(env.data.db, -1, false));
  RefinedTemplate refined = UnwrapOrDie(
      RefineGroupDepth(env.data.db, group_templates[0], env.Options(0.0)));
  EXPECT_TRUE(refined.meets_target);
  EXPECT_FALSE(refined.chosen_depth.has_value());
  EXPECT_TRUE(refined.tmpl.IsSimple());
}

TEST(RefineTest, TightTargetAddsDepthDecoration) {
  RefineEnv& env = RefineEnv::Get();
  auto group_templates = UnwrapOrDie(TemplatesGroups(env.data.db, -1, false));
  const ExplanationTemplate& base = group_templates[0];  // group_appt

  RefineOptions options = env.Options(0.0);
  MetricsEvaluator evaluator(&env.data.db, "EvalLog");
  PrecisionRecall undecorated = UnwrapOrDie(evaluator.Evaluate(
      {base}, env.eval.real_lids, env.eval.fake_lids, env.eval.real_lids));

  // Pick a target strictly above the undecorated precision but below 1 so a
  // decoration is required yet attainable.
  double target = undecorated.Precision() + 0.01;
  if (target > 0.99) GTEST_SKIP() << "undecorated already near-perfect";

  RefinedTemplate refined = UnwrapOrDie(
      RefineGroupDepth(env.data.db, base, env.Options(target)));
  if (refined.meets_target) {
    ASSERT_TRUE(refined.chosen_depth.has_value());
    EXPECT_TRUE(refined.tmpl.IsDecorated());
    EXPECT_GE(refined.validation.Precision(), target);
    // Decoration restricts: recall can only drop.
    EXPECT_LE(refined.validation.Recall(), undecorated.Recall() + 1e-12);
  } else {
    // No depth met the target: the reported variant is decorated and its
    // precision is the best achievable.
    EXPECT_TRUE(refined.tmpl.IsDecorated());
  }
}

TEST(RefineTest, DecoratedVariantsEquivalentToHandWrittenDepth) {
  RefineEnv& env = RefineEnv::Get();
  auto base = UnwrapOrDie(TemplatesGroups(env.data.db, -1, false))[0];
  auto depth1 = UnwrapOrDie(TemplatesGroups(env.data.db, 1, false))[0];

  RefineOptions options = env.Options(0.99);
  // Force evaluation of depth decorations by demanding (near-)perfection;
  // compare the depth-1 decorated variant against the hand-written depth-1
  // template: both must explain the same lids.
  MetricsEvaluator evaluator(&env.data.db, "EvalLog");
  auto refined_d1 = UnwrapOrDie([&]() -> StatusOr<ExplanationTemplate> {
    // Decorate manually via the public API (depth 1) for the comparison.
    auto result = RefineGroupDepth(env.data.db, base, options);
    if (!result.ok()) return result.status();
    // Regardless of which depth was chosen, build the comparison from the
    // hand-written depth-1 template.
    return depth1;
  }());
  auto hand = UnwrapOrDie(evaluator.ExplainedSet({depth1}));
  auto via_refine = UnwrapOrDie(evaluator.ExplainedSet({refined_d1}));
  EXPECT_EQ(hand, via_refine);
}

TEST(RefineTest, RefineTemplateSetPreservesOrderAndCount) {
  RefineEnv& env = RefineEnv::Get();
  std::vector<ExplanationTemplate> templates =
      UnwrapOrDie(TemplatesGroups(env.data.db, -1, true));
  templates.push_back(UnwrapOrDie(TemplateApptWithDoctor(env.data.db)));
  auto refined = UnwrapOrDie(
      RefineTemplateSet(env.data.db, templates, env.Options(0.8)));
  ASSERT_EQ(refined.size(), templates.size());
  EXPECT_EQ(refined.back().tmpl.name(), "appt_with_doctor");
}

TEST(RefineTest, InvalidOptionsRejected) {
  RefineEnv& env = RefineEnv::Get();
  ExplanationTemplate appt = UnwrapOrDie(TemplateApptWithDoctor(env.data.db));
  RefineOptions options;  // missing validation log
  EXPECT_FALSE(RefineGroupDepth(env.data.db, appt, options).ok());
}

}  // namespace
}  // namespace eba
