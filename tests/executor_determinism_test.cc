// Determinism suite for the morsel-parallel probe phase and the compiled
// plan cache: at every tested thread count {1, 2, 4, 8} the
// late-materialization executor must produce byte-identical frames
// (Materialize row order included), DistinctLids vectors, and ExplainAll
// reports — per-shard selection vectors are concatenated in shard order, so
// sharding must never reorder output. Plan-cache tests assert that a replay
// is bit-identical to the recording execution, that an append re-binds the
// plan (watermark move, structure intact) instead of discarding it, that a
// structural mutation still invalidates it, and that the LRU byte cap
// evicts in recency order.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "careweb/generator.h"
#include "careweb/workload.h"
#include "common/date.h"
#include "core/engine.h"
#include "core/miner.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/plan_cache.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::BuildPaperToyDatabase;
using testing_util::UnwrapOrDie;

constexpr size_t kThreadCounts[] = {2, 4, 8};

/// Parallel executor options: min_rows_per_morsel = 1 forces multi-shard
/// probes even on tiny frames, so the toy database exercises the same
/// concatenation machinery as the large log.
ExecutorOptions Threaded(size_t num_threads) {
  ExecutorOptions options;
  options.num_threads = num_threads;
  options.min_rows_per_morsel = 1;
  return options;
}

/// The Figure 3 toy queries the semi-join unit tests use, plus a decorated
/// variant, parsed fresh per call.
std::vector<PathQuery> ToyQueries(const Database& db) {
  std::vector<PathQuery> queries;
  queries.push_back(UnwrapOrDie(ParsePathQuery(
      db, "Log L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User")));
  queries.push_back(UnwrapOrDie(ParsePathQuery(
      db, "Log L, Appointments A, Doctor_Info I1, Doctor_Info I2",
      "L.Patient = A.Patient AND A.Doctor = I1.Doctor AND "
      "I1.Department = I2.Department AND I2.Doctor = L.User")));
  return queries;
}

/// Runs every (query, thread count) combination and asserts the parallel
/// executor reproduces the serial executor's output byte for byte.
void ExpectIdenticalAcrossThreadCounts(const Database& db,
                                       const std::vector<PathQuery>& queries,
                                       QAttr lid_attr) {
  Executor serial(&db);
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const PathQuery& q = queries[qi];
    const std::vector<int64_t> ref_lids =
        UnwrapOrDie(serial.DistinctLids(q, lid_attr));
    const Relation ref_rel = UnwrapOrDie(serial.Materialize(q));
    for (size_t threads : kThreadCounts) {
      Executor parallel(&db, Threaded(threads));
      EXPECT_EQ(UnwrapOrDie(parallel.DistinctLids(q, lid_attr)), ref_lids)
          << "query " << qi << " threads " << threads;
      const Relation rel = UnwrapOrDie(parallel.Materialize(q));
      EXPECT_EQ(rel.attrs, ref_rel.attrs);
      // Byte-identical row order, not just the same multiset: shard-ordered
      // concatenation must reproduce the serial probe order exactly.
      EXPECT_EQ(rel.rows, ref_rel.rows)
          << "query " << qi << " threads " << threads;
    }
  }
}

TEST(ExecutorDeterminismTest, ToyDatabaseIdenticalAcrossThreadCounts) {
  Database db = BuildPaperToyDatabase();
  ExpectIdenticalAcrossThreadCounts(db, ToyQueries(db), QAttr{0, 0});
}

TEST(ExecutorDeterminismTest, CareWebLogIdenticalAcrossThreadCounts) {
  // The ~18k-row generated hospital log (Small config at 14 days), probing
  // with every hand-crafted direct template.
  CareWebConfig config = CareWebConfig::Small();
  config.num_days = 14;
  CareWebData data = UnwrapOrDie(GenerateCareWeb(config));
  const Table* log = UnwrapOrDie(data.db.GetTable("Log"));
  ASSERT_GT(log->num_rows(), 10000u);
  const QAttr lid_attr{0, log->schema().ColumnIndex("Lid")};
  std::vector<PathQuery> queries;
  for (const auto& tmpl :
       UnwrapOrDie(TemplatesHandcraftedDirect(data.db, true))) {
    queries.push_back(tmpl.query());
  }
  ASSERT_FALSE(queries.empty());
  ExpectIdenticalAcrossThreadCounts(data.db, queries, lid_attr);
}

TEST(ExecutorDeterminismTest, ExplainAllReportIdenticalAcrossThreadCounts) {
  CareWebData data = UnwrapOrDie(GenerateCareWeb(CareWebConfig::Tiny()));
  ExplanationEngine engine =
      UnwrapOrDie(ExplanationEngine::Create(&data.db, "Log"));
  for (auto& tmpl : UnwrapOrDie(TemplatesHandcraftedDirect(data.db, true))) {
    EBA_ASSERT_OK(engine.AddTemplate(tmpl));
  }
  ASSERT_GT(engine.num_templates(), 0u);

  const ExplanationReport reference = UnwrapOrDie(engine.ExplainAll());
  for (size_t threads : kThreadCounts) {
    ExplainAllOptions options;
    options.num_threads = threads;
    options.executor.num_threads = threads;
    options.executor.min_rows_per_morsel = 1;
    const ExplanationReport report = UnwrapOrDie(engine.ExplainAll(options));
    EXPECT_EQ(report.log_size, reference.log_size) << threads;
    EXPECT_EQ(report.per_template_counts, reference.per_template_counts)
        << threads;
    EXPECT_EQ(report.explained_lids, reference.explained_lids) << threads;
    EXPECT_EQ(report.unexplained_lids, reference.unexplained_lids) << threads;
  }
}

// --------------------------- Plan cache tests ---------------------------

class PlanCacheTest : public ::testing::Test {
 protected:
  PlanCacheTest() : db_(BuildPaperToyDatabase()) {}

  ExecutorOptions Cached() {
    ExecutorOptions options;
    options.plan_cache = &cache_;
    return options;
  }

  PathQuery ApptQuery() {
    return UnwrapOrDie(ParsePathQuery(
        db_, "Log L, Appointments A",
        "L.Patient = A.Patient AND A.Doctor = L.User"));
  }
  QAttr Lid() { return QAttr{0, 0}; }

  Database db_;
  PlanCache cache_;
};

TEST_F(PlanCacheTest, SecondExecutionReplaysCachedPlan) {
  Executor cached(&db_, Cached());
  Executor fresh(&db_);
  const PathQuery q = ApptQuery();

  const std::vector<int64_t> first = UnwrapOrDie(cached.DistinctLids(q, Lid()));
  EXPECT_FALSE(cached.last_stats().plan_cache_hit);
  EXPECT_EQ(cached.last_stats().plan_cache_misses, 1u);
  EXPECT_EQ(cache_.size(), 1u);
  const ExecStats recorded = cached.last_stats();

  const std::vector<int64_t> second =
      UnwrapOrDie(cached.DistinctLids(q, Lid()));
  EXPECT_TRUE(cached.last_stats().plan_cache_hit);
  EXPECT_EQ(cached.last_stats().plan_cache_hits, 1u);
  EXPECT_EQ(second, first);
  EXPECT_EQ(second, UnwrapOrDie(fresh.DistinctLids(q, Lid())));

  // The replayed execution reports the same frozen join order and
  // intermediate cardinalities as the recording execution.
  const ExecStats& replayed = cached.last_stats();
  ASSERT_EQ(replayed.join_order.size(), recorded.join_order.size());
  for (size_t i = 0; i < replayed.join_order.size(); ++i) {
    EXPECT_EQ(replayed.join_order[i].condition_index,
              recorded.join_order[i].condition_index);
    EXPECT_EQ(replayed.join_order[i].is_filter,
              recorded.join_order[i].is_filter);
    EXPECT_EQ(replayed.join_order[i].rows_after,
              recorded.join_order[i].rows_after);
  }
  EXPECT_EQ(replayed.joins_executed, recorded.joins_executed);
  EXPECT_EQ(replayed.used_semi_join, recorded.used_semi_join);
}

TEST_F(PlanCacheTest, AppendRebindsPlanInsteadOfInvalidating) {
  Executor cached(&db_, Cached());
  const PathQuery q = ApptQuery();

  const std::vector<int64_t> before =
      UnwrapOrDie(cached.DistinctLids(q, Lid()));
  EXPECT_EQ(before, (std::vector<int64_t>{1}));

  // Appending to a joined table moves its watermark but not its structural
  // epoch: the cached plan is re-bound (index extended past the watermark)
  // and replayed — a hit plus a rebind, never an invalidation.
  Table* appt = db_.GetTable("Appointments").value();
  EBA_ASSERT_OK(appt->AppendRow(
      {Value::Int64(testing_util::kBob),
       Value::Timestamp(Date::FromCivil(2010, 2, 2, 9, 0, 0).ToSeconds()),
       Value::Int64(testing_util::kDave)}));

  const std::vector<int64_t> after =
      UnwrapOrDie(cached.DistinctLids(q, Lid()));
  EXPECT_TRUE(cached.last_stats().plan_cache_hit);
  EXPECT_EQ(cached.last_stats().plan_rebinds, 1u);
  EXPECT_EQ(cached.last_stats().plan_cache_invalidations, 0u);
  // The new appointment (Bob with Dave) explains L2 as well — a dangling
  // replay of the stale bindings would have answered {1}.
  EXPECT_EQ(after, (std::vector<int64_t>{1, 2}));
  Executor fresh(&db_);
  EXPECT_EQ(after, UnwrapOrDie(fresh.DistinctLids(q, Lid())));

  // The rebound plan is stamped with the new watermark: the next lookup is
  // a plain hit, no further rebind.
  const std::vector<int64_t> again = UnwrapOrDie(cached.DistinctLids(q, Lid()));
  EXPECT_TRUE(cached.last_stats().plan_cache_hit);
  EXPECT_EQ(cached.last_stats().plan_rebinds, 1u);
  EXPECT_EQ(again, after);
}

TEST_F(PlanCacheTest, AppendToLogRebindsAndSeesNewRows) {
  Executor cached(&db_, Cached());
  Executor fresh(&db_);
  const PathQuery q = ApptQuery();
  EXPECT_EQ(UnwrapOrDie(cached.DistinctLids(q, Lid())),
            (std::vector<int64_t>{1}));

  // A new access by Mike to Bob's record: explained by Bob's existing
  // appointment with Mike. Variable 0 grew, so the initial scan must cover
  // the appended suffix and the (extended) lid index must find it.
  Table* log = db_.GetTable("Log").value();
  EBA_ASSERT_OK(log->AppendRow(
      {Value::Int64(3),
       Value::Timestamp(Date::FromCivil(2010, 3, 3, 9, 0, 0).ToSeconds()),
       Value::Int64(testing_util::kMike), Value::Int64(testing_util::kBob),
       Value::String("viewed record")}));

  const std::vector<int64_t> after = UnwrapOrDie(cached.DistinctLids(q, Lid()));
  EXPECT_TRUE(cached.last_stats().plan_cache_hit);
  EXPECT_EQ(cached.last_stats().plan_rebinds, 1u);
  EXPECT_EQ(after, (std::vector<int64_t>{1, 3}));
  EXPECT_EQ(after, UnwrapOrDie(fresh.DistinctLids(q, Lid())));

  // The per-access explain shape re-binds too, and the lid filter resolves
  // against the extended index.
  const std::vector<Value> new_lid = {Value::Int64(3)};
  const Relation cached_rel =
      UnwrapOrDie(cached.MaterializeForLogIds(q, Lid(), new_lid));
  const Relation fresh_rel =
      UnwrapOrDie(fresh.MaterializeForLogIds(q, Lid(), new_lid));
  EXPECT_EQ(cached_rel.rows, fresh_rel.rows);
  EXPECT_FALSE(cached_rel.rows.empty());
}

TEST_F(PlanCacheTest, StructuralMutationStillInvalidates) {
  Executor cached(&db_, Cached());
  const PathQuery q = ApptQuery();
  EXPECT_EQ(UnwrapOrDie(cached.DistinctLids(q, Lid())),
            (std::vector<int64_t>{1}));

  // mutable_column may rewrite existing cells in place — the structural
  // epoch moves and the plan must be rebuilt, not re-bound.
  Table* appt = db_.GetTable("Appointments").value();
  appt->mutable_column(0);

  EXPECT_EQ(UnwrapOrDie(cached.DistinctLids(q, Lid())),
            (std::vector<int64_t>{1}));
  EXPECT_FALSE(cached.last_stats().plan_cache_hit);
  EXPECT_EQ(cached.last_stats().plan_cache_invalidations, 1u);
  EXPECT_EQ(cached.last_stats().plan_rebinds, 0u);
}

TEST_F(PlanCacheTest, AppendRebindResolvesNewStringLiteral) {
  Executor cached(&db_, Cached());
  Executor fresh(&db_);
  // Department = "Oncology" does not occur yet: the literal compiles to a
  // never-matches filter.
  const PathQuery q = UnwrapOrDie(ParsePathQuery(
      db_, "Log L, Appointments A, Doctor_Info I",
      "L.Patient = A.Patient AND A.Doctor = I.Doctor AND "
      "I.Department = 'Oncology'"));
  EXPECT_EQ(UnwrapOrDie(cached.DistinctLids(q, Lid())),
            (std::vector<int64_t>{}));

  // The append mints the "Oncology" dictionary code; the rebind must
  // re-resolve the literal instead of replaying the frozen never-matches.
  Table* info = db_.GetTable("Doctor_Info").value();
  EBA_ASSERT_OK(info->AppendRow(
      {Value::Int64(testing_util::kDave), Value::String("Oncology")}));

  const std::vector<int64_t> after = UnwrapOrDie(cached.DistinctLids(q, Lid()));
  EXPECT_TRUE(cached.last_stats().plan_cache_hit);
  EXPECT_EQ(cached.last_stats().plan_rebinds, 1u);
  EXPECT_EQ(after, UnwrapOrDie(fresh.DistinctLids(q, Lid())));
  EXPECT_EQ(after, (std::vector<int64_t>{1}));
}

TEST_F(PlanCacheTest, AppendRebindExtendsCodeTranslations) {
  // A cross-column string join (Log.Action joined to a second table's
  // string column through an admin relationship is overkill here; use a
  // dedicated two-table database instead).
  Database db;
  EBA_ASSERT_OK(db.CreateTable(TableSchema(
      "Log", {ColumnDef{"Lid", DataType::kInt64, "lid", true},
              ColumnDef{"Tag", DataType::kString, "tag", false}})));
  EBA_ASSERT_OK(db.CreateTable(TableSchema(
      "Tags", {ColumnDef{"Tag", DataType::kString, "tag", false},
               ColumnDef{"Weight", DataType::kInt64, "", false}})));
  Table* log = db.GetTable("Log").value();
  Table* tags = db.GetTable("Tags").value();
  EBA_ASSERT_OK(log->AppendRow({Value::Int64(1), Value::String("alpha")}));
  EBA_ASSERT_OK(log->AppendRow({Value::Int64(2), Value::String("beta")}));
  EBA_ASSERT_OK(tags->AppendRow({Value::String("alpha"), Value::Int64(10)}));

  PlanCache cache;
  ExecutorOptions options;
  options.plan_cache = &cache;
  Executor cached(&db, options);
  Executor fresh(&db);
  const PathQuery q =
      UnwrapOrDie(ParsePathQuery(db, "Log L, Tags T", "L.Tag = T.Tag"));
  const QAttr lid{0, 0};
  EXPECT_EQ(UnwrapOrDie(cached.DistinctLids(q, lid)),
            (std::vector<int64_t>{1}));

  // Appends mint codes on both sides: "gamma" only in the log (probe side
  // grows), "beta" in Tags (build side grows — the previously untranslatable
  // probe code for "beta" must now resolve).
  EBA_ASSERT_OK(log->AppendRow({Value::Int64(3), Value::String("gamma")}));
  EBA_ASSERT_OK(tags->AppendRow({Value::String("beta"), Value::Int64(20)}));

  const std::vector<int64_t> after = UnwrapOrDie(cached.DistinctLids(q, lid));
  EXPECT_TRUE(cached.last_stats().plan_cache_hit);
  EXPECT_EQ(cached.last_stats().plan_rebinds, 1u);
  EXPECT_EQ(after, UnwrapOrDie(fresh.DistinctLids(q, lid)));
  EXPECT_EQ(after, (std::vector<int64_t>{1, 2}));
}

TEST(PlanCacheLruTest, ByteCapEvictsLeastRecentlyUsed) {
  Database db = BuildPaperToyDatabase();
  // An uncapped cache to measure one plan's footprint, so the capped cache
  // below holds roughly two entries.
  PlanCache probe_cache;
  ExecutorOptions probe_options;
  probe_options.plan_cache = &probe_cache;
  Executor probe(&db, probe_options);
  const QAttr lid{0, 0};
  auto query = [&](const std::string& conds) {
    return UnwrapOrDie(ParsePathQuery(db, "Log L, Appointments A", conds));
  };
  const PathQuery q1 = query("L.Patient = A.Patient AND A.Doctor = L.User");
  const PathQuery q2 = query("L.Patient = A.Patient");
  const PathQuery q3 = query("L.User = A.Doctor");
  (void)UnwrapOrDie(probe.DistinctLids(q1, lid));
  const size_t q1_bytes = probe_cache.resident_bytes();
  ASSERT_GT(q1_bytes, 0u);
  (void)UnwrapOrDie(probe.DistinctLids(q2, lid));
  const size_t q1_q2_bytes = probe_cache.resident_bytes();
  const size_t q2_bytes = q1_q2_bytes - q1_bytes;
  ASSERT_GT(q2_bytes, 0u);

  // Room for q1 + q2 plus half of another q2-sized plan: inserting a third
  // single-join plan (q3 ≈ q2) must overflow.
  PlanCacheOptions cache_options;
  cache_options.max_bytes = q1_q2_bytes + q2_bytes / 2;
  PlanCache cache(cache_options);
  ExecutorOptions options;
  options.plan_cache = &cache;
  Executor cached(&db, options);

  (void)UnwrapOrDie(cached.DistinctLids(q1, lid));
  (void)UnwrapOrDie(cached.DistinctLids(q2, lid));
  EXPECT_EQ(cache.size(), 2u);
  // Touch q1 so q2 is the least-recently-used entry.
  (void)UnwrapOrDie(cached.DistinctLids(q1, lid));
  EXPECT_EQ(cache.stats().hits, 1u);

  // Inserting q3 exceeds the cap: q2 (LRU) is evicted, q1 survives.
  (void)UnwrapOrDie(cached.DistinctLids(q3, lid));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.resident_bytes(), cache_options.max_bytes);

  (void)UnwrapOrDie(cached.DistinctLids(q1, lid));
  EXPECT_TRUE(cached.last_stats().plan_cache_hit);  // q1 still resident
  (void)UnwrapOrDie(cached.DistinctLids(q2, lid));
  EXPECT_FALSE(cached.last_stats().plan_cache_hit);  // q2 was evicted
  EXPECT_EQ(cache.stats().evictions, 2u);  // re-inserting q2 evicted q3
}

TEST(PlanCacheLruTest, LoneOversizedEntryIsKept) {
  Database db = BuildPaperToyDatabase();
  PlanCacheOptions cache_options;
  cache_options.max_bytes = 1;  // nothing fits
  PlanCache cache(cache_options);
  ExecutorOptions options;
  options.plan_cache = &cache;
  Executor cached(&db, options);
  const PathQuery q = UnwrapOrDie(ParsePathQuery(
      db, "Log L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User"));
  const QAttr lid{0, 0};
  (void)UnwrapOrDie(cached.DistinctLids(q, lid));
  // The newest entry is never evicted: one resident plan beats none.
  EXPECT_EQ(cache.size(), 1u);
  (void)UnwrapOrDie(cached.DistinctLids(q, lid));
  EXPECT_TRUE(cached.last_stats().plan_cache_hit);
}

TEST_F(PlanCacheTest, DropAndRecreateTableInvalidatesPlan) {
  Executor cached(&db_, Cached());
  const PathQuery q = ApptQuery();
  EXPECT_EQ(UnwrapOrDie(cached.DistinctLids(q, Lid())),
            (std::vector<int64_t>{1}));

  // Replace the Appointments table wholesale. The cached plan holds
  // pointers into the dropped table; the catalog-generation check must
  // reject the plan without ever dereferencing them.
  TableSchema schema = db_.GetTable("Appointments").value()->schema();
  EBA_ASSERT_OK(db_.DropTable("Appointments"));
  EBA_ASSERT_OK(db_.CreateTable(schema));
  Table* appt = db_.GetTable("Appointments").value();
  EBA_ASSERT_OK(appt->AppendRow(
      {Value::Int64(testing_util::kBob),
       Value::Timestamp(Date::FromCivil(2010, 2, 2, 9, 0, 0).ToSeconds()),
       Value::Int64(testing_util::kDave)}));

  const std::vector<int64_t> after = UnwrapOrDie(cached.DistinctLids(q, Lid()));
  EXPECT_FALSE(cached.last_stats().plan_cache_hit);
  EXPECT_GE(cached.last_stats().plan_cache_invalidations, 1u);
  // Only Bob has an appointment now, so only L2 (Dave -> Bob) is explained.
  EXPECT_EQ(after, (std::vector<int64_t>{2}));
  Executor fresh(&db_);
  EXPECT_EQ(after, UnwrapOrDie(fresh.DistinctLids(q, Lid())));
}

TEST_F(PlanCacheTest, ReplayWithMorselsMatchesSerialUncached) {
  ExecutorOptions options = Cached();
  options.num_threads = 4;
  options.min_rows_per_morsel = 1;
  Executor cached_parallel(&db_, options);
  Executor serial(&db_);
  for (const PathQuery& q : ToyQueries(db_)) {
    const std::vector<int64_t> ref = UnwrapOrDie(serial.DistinctLids(q, Lid()));
    // Record, then replay: both must match the serial uncached executor.
    EXPECT_EQ(UnwrapOrDie(cached_parallel.DistinctLids(q, Lid())), ref);
    EXPECT_EQ(UnwrapOrDie(cached_parallel.DistinctLids(q, Lid())), ref);
    EXPECT_TRUE(cached_parallel.last_stats().plan_cache_hit);
    const Relation ref_rel = UnwrapOrDie(serial.Materialize(q));
    EXPECT_EQ(UnwrapOrDie(cached_parallel.Materialize(q)).rows, ref_rel.rows);
    EXPECT_EQ(UnwrapOrDie(cached_parallel.Materialize(q)).rows, ref_rel.rows);
  }
}

TEST_F(PlanCacheTest, LidFilterReplaysAcrossDifferentFilters) {
  Executor cached(&db_, Cached());
  Executor fresh(&db_);
  const PathQuery q = ApptQuery();
  const std::vector<Value> lids1 = {Value::Int64(1)};
  const std::vector<Value> lids2 = {Value::Int64(2)};

  // The lid filter is a runtime input, not part of the plan: the plan
  // recorded for lids1 replays for lids2 and must match a fresh execution.
  const Relation r1 = UnwrapOrDie(cached.MaterializeForLogIds(q, Lid(), lids1));
  const Relation r2 = UnwrapOrDie(cached.MaterializeForLogIds(q, Lid(), lids2));
  EXPECT_TRUE(cached.last_stats().plan_cache_hit);
  const Relation f1 = UnwrapOrDie(fresh.MaterializeForLogIds(q, Lid(), lids1));
  const Relation f2 = UnwrapOrDie(fresh.MaterializeForLogIds(q, Lid(), lids2));
  EXPECT_EQ(r1.rows, f1.rows);
  EXPECT_EQ(r2.rows, f2.rows);
}

TEST(MinerPlanCacheTest, RepeatedSupportQueriesHitThePlanCache) {
  Database db = BuildPaperToyDatabase();
  MinerOptions options;
  options.log_table = "Log";
  options.support_fraction = 0.5;
  options.max_length = 4;
  options.max_tables = 3;
  options.skip_nonselective = false;
  // Disable support-count caching so equivalent paths re-execute: the
  // re-executions must replay cached plans.
  options.cache_support = false;

  MiningResult with_plans =
      UnwrapOrDie(TemplateMiner(&db, options).MineTwoWay());
  EXPECT_GT(with_plans.stats.plan_cache_hits, 0u);
  EXPECT_EQ(with_plans.stats.support_cache_hits, 0u);

  MinerOptions no_plans = options;
  no_plans.cache_plans = false;
  MiningResult without_plans =
      UnwrapOrDie(TemplateMiner(&db, no_plans).MineTwoWay());
  EXPECT_EQ(without_plans.stats.plan_cache_hits, 0u);

  // Plan caching never changes what is mined.
  ASSERT_EQ(with_plans.templates.size(), without_plans.templates.size());
  for (size_t i = 0; i < with_plans.templates.size(); ++i) {
    EXPECT_EQ(with_plans.templates[i].support,
              without_plans.templates[i].support);
    EXPECT_EQ(UnwrapOrDie(with_plans.templates[i].tmpl.CanonicalKey(db)),
              UnwrapOrDie(without_plans.templates[i].tmpl.CanonicalKey(db)));
  }
}

TEST(EnginePlanCacheTest, RepeatedExplainAllReusesPlans) {
  CareWebData data = UnwrapOrDie(GenerateCareWeb(CareWebConfig::Tiny()));
  ExplanationEngine engine =
      UnwrapOrDie(ExplanationEngine::Create(&data.db, "Log"));
  for (auto& tmpl : UnwrapOrDie(TemplatesHandcraftedDirect(data.db, true))) {
    EBA_ASSERT_OK(engine.AddTemplate(tmpl));
  }
  ASSERT_GT(engine.num_templates(), 0u);

  const ExplanationReport first = UnwrapOrDie(engine.ExplainAll());
  EXPECT_EQ(engine.plan_cache()->stats().hits, 0u);
  EXPECT_EQ(engine.plan_cache()->size(), engine.num_templates());

  const ExplanationReport second = UnwrapOrDie(engine.ExplainAll());
  EXPECT_EQ(engine.plan_cache()->stats().hits, engine.num_templates());
  EXPECT_EQ(second.per_template_counts, first.per_template_counts);
  EXPECT_EQ(second.explained_lids, first.explained_lids);
  EXPECT_EQ(second.unexplained_lids, first.unexplained_lids);
}

// ------------------- Reverse semi-join (DistinctLidsJoinedTo) -------------

/// Both pivot modes for a forced A/B, plus kAuto.
constexpr Executor::PivotChoice kPivotModes[] = {
    Executor::PivotChoice::kAuto, Executor::PivotChoice::kReverseSeed,
    Executor::PivotChoice::kForwardFilter};

Executor::JoinedToOptions WithPivot(Executor::PivotChoice choice) {
  Executor::JoinedToOptions jopts;
  jopts.pivot = choice;
  return jopts;
}

/// Restricting a variable to its table's FULL row range is no restriction:
/// JoinedTo must reproduce DistinctLids exactly, whichever side the pivot
/// seeds and at any thread count.
TEST(ReverseSemiJoinTest, FullRangeEqualsDistinctLids) {
  CareWebData data = UnwrapOrDie(GenerateCareWeb(CareWebConfig::Tiny()));
  const QAttr lid_attr{
      0, UnwrapOrDie(data.db.GetTable("Log"))->schema().ColumnIndex("Lid")};
  for (const auto& tmpl :
       UnwrapOrDie(TemplatesHandcraftedDirect(data.db, true))) {
    const PathQuery& q = tmpl.query();
    Executor serial(&data.db);
    const std::vector<int64_t> reference =
        UnwrapOrDie(serial.DistinctLids(q, lid_attr));
    for (size_t v = 0; v < q.vars.size(); ++v) {
      const std::string& table = q.vars[v].table;
      const size_t rows = UnwrapOrDie(data.db.GetTable(table))->num_rows();
      for (Executor::PivotChoice mode : kPivotModes) {
        for (size_t threads : {size_t{1}, size_t{4}}) {
          Executor executor(&data.db, Threaded(threads));
          EXPECT_EQ(UnwrapOrDie(executor.DistinctLidsJoinedTo(
                        q, lid_attr, table, RowRange{0, rows},
                        WithPivot(mode))),
                    reference)
              << tmpl.name() << " var " << v << " mode "
              << static_cast<int>(mode) << " threads " << threads;
        }
      }
    }
  }
}

/// The monotone-append property the streaming delta audit rests on:
///   DistinctLids(after) == DistinctLids(before) ∪ JoinedTo(suffix).
TEST(ReverseSemiJoinTest, AppendedSuffixIsExactlyTheDelta) {
  Database db = BuildPaperToyDatabase();
  const PathQuery q = UnwrapOrDie(ParsePathQuery(
      db, "Log L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User"));
  const QAttr lid{0, 0};
  Executor executor(&db);
  const std::vector<int64_t> before = UnwrapOrDie(executor.DistinctLids(q, lid));
  EXPECT_EQ(before, (std::vector<int64_t>{1}));

  Table* appt = db.GetTable("Appointments").value();
  const size_t suffix_begin = appt->num_rows();
  EBA_ASSERT_OK(appt->AppendRow(
      {Value::Int64(testing_util::kBob),
       Value::Timestamp(Date::FromCivil(2010, 2, 2, 9, 0, 0).ToSeconds()),
       Value::Int64(testing_util::kDave)}));

  for (Executor::PivotChoice mode : kPivotModes) {
    const std::vector<int64_t> delta = UnwrapOrDie(executor.DistinctLidsJoinedTo(
        q, lid, "Appointments", RowRange{suffix_begin, appt->num_rows()},
        WithPivot(mode)));
    EXPECT_EQ(delta, (std::vector<int64_t>{2})) << static_cast<int>(mode);
  }
  const std::vector<int64_t> after = UnwrapOrDie(executor.DistinctLids(q, lid));
  EXPECT_EQ(after, (std::vector<int64_t>{1, 2}));
}

TEST(ReverseSemiJoinTest, EmptyRangeUnreferencedTableAndBoxedEngine) {
  Database db = BuildPaperToyDatabase();
  const PathQuery q = UnwrapOrDie(ParsePathQuery(
      db, "Log L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User"));
  const QAttr lid{0, 0};
  Executor executor(&db);
  // Empty range: nothing to join to.
  EXPECT_TRUE(UnwrapOrDie(executor.DistinctLidsJoinedTo(
                  q, lid, "Appointments", RowRange{1, 1}))
                  .empty());
  // Range clamped past the table end.
  EXPECT_TRUE(UnwrapOrDie(executor.DistinctLidsJoinedTo(
                  q, lid, "Appointments", RowRange{100, 200}))
                  .empty());
  // A table the query never touches cannot add witnesses.
  EXPECT_TRUE(UnwrapOrDie(executor.DistinctLidsJoinedTo(
                  q, lid, "Doctor_Info", RowRange{0, 2}))
                  .empty());
  // include_var0 = false skips variable-0 occurrences (the log itself).
  Executor::JoinedToOptions no_var0;
  no_var0.include_var0 = false;
  EXPECT_TRUE(UnwrapOrDie(executor.DistinctLidsJoinedTo(q, lid, "Log",
                                                        RowRange{0, 2}, no_var0))
                  .empty());
  // The boxed reference engine has no row-id pivot machinery.
  ExecutorOptions boxed;
  boxed.engine = ExecutorOptions::Engine::kBoxedReference;
  Executor boxed_exec(&db, boxed);
  EXPECT_FALSE(
      boxed_exec.DistinctLidsJoinedTo(q, lid, "Appointments", RowRange{0, 2})
          .ok());
}

/// A self-join query pivoted at its non-log occurrence: seeding variable 1
/// of "Log L, Log L2" with an appended suffix finds the OLD lids the new
/// rows retroactively explain.
TEST(ReverseSemiJoinTest, SelfJoinPivotFindsRetroactiveWitnesses) {
  Database db = BuildPaperToyDatabase();
  const PathQuery q = UnwrapOrDie(ParsePathQuery(
      db, "Log L, Log L2",
      "L.Patient = L2.Patient AND L2.User = L.User AND L.Date > L2.Date"));
  const QAttr lid{0, 0};
  Table* log = db.GetTable("Log").value();
  const size_t suffix_begin = log->num_rows();
  // Dated before L1: explains L1 via the L2 side.
  EBA_ASSERT_OK(log->AppendRow(
      {Value::Int64(3),
       Value::Timestamp(Date::FromCivil(2010, 1, 1, 8, 0, 0).ToSeconds()),
       Value::Int64(testing_util::kDave), Value::Int64(testing_util::kAlice),
       Value::String("viewed record")}));
  Executor executor(&db);
  Executor::JoinedToOptions no_var0;
  no_var0.include_var0 = false;
  for (Executor::PivotChoice mode : kPivotModes) {
    no_var0.pivot = mode;
    EXPECT_EQ(UnwrapOrDie(executor.DistinctLidsJoinedTo(
                  q, lid, "Log", RowRange{suffix_begin, log->num_rows()},
                  no_var0)),
              (std::vector<int64_t>{1}))
        << static_cast<int>(mode);
  }
}

/// Pivot plans are first-class plan-cache citizens: cached per (query,
/// pivot, mode) with the row range as a runtime input, re-bound on appends.
TEST_F(PlanCacheTest, PivotPlansCacheAndRebindAcrossAppends) {
  Executor cached(&db_, Cached());
  Executor fresh(&db_);
  const PathQuery q = ApptQuery();
  Table* appt = db_.GetTable("Appointments").value();

  // Cold: the pivot plan is recorded and cached under its own key.
  const std::vector<int64_t> cold = UnwrapOrDie(cached.DistinctLidsJoinedTo(
      q, Lid(), "Appointments", RowRange{0, appt->num_rows()}));
  EXPECT_FALSE(cached.last_stats().plan_cache_hit);
  EXPECT_EQ(cold, (std::vector<int64_t>{1}));
  EXPECT_EQ(cache_.size(), 1u);

  // Warm, different runtime range, same plan: a pure hit.
  const std::vector<int64_t> warm = UnwrapOrDie(cached.DistinctLidsJoinedTo(
      q, Lid(), "Appointments", RowRange{0, 1}));
  EXPECT_TRUE(cached.last_stats().plan_cache_hit);
  EXPECT_EQ(cached.last_stats().plan_rebinds, 0u);
  EXPECT_EQ(warm, (std::vector<int64_t>{1}));

  // Append a row: the next pivot run over the suffix re-binds (extended
  // index bindings), never invalidates, and matches a fresh executor.
  const size_t suffix_begin = appt->num_rows();
  EBA_ASSERT_OK(appt->AppendRow(
      {Value::Int64(testing_util::kBob),
       Value::Timestamp(Date::FromCivil(2010, 2, 2, 9, 0, 0).ToSeconds()),
       Value::Int64(testing_util::kDave)}));
  const std::vector<int64_t> delta = UnwrapOrDie(cached.DistinctLidsJoinedTo(
      q, Lid(), "Appointments", RowRange{suffix_begin, appt->num_rows()}));
  EXPECT_TRUE(cached.last_stats().plan_cache_hit);
  EXPECT_EQ(cached.last_stats().plan_rebinds, 1u);
  EXPECT_EQ(cached.last_stats().plan_cache_invalidations, 0u);
  EXPECT_EQ(delta, (std::vector<int64_t>{2}));
  EXPECT_EQ(delta, UnwrapOrDie(fresh.DistinctLidsJoinedTo(
                       q, Lid(), "Appointments",
                       RowRange{suffix_begin, appt->num_rows()})));
}

}  // namespace
}  // namespace eba
