// Unit tests for src/core: templates, natural-language instances, the
// explanation engine, and precision/recall metrics.

#include <gtest/gtest.h>

#include <set>

#include "careweb/generator.h"
#include "careweb/workload.h"
#include "core/engine.h"
#include "core/instance.h"
#include "core/metrics.h"
#include "core/template.h"
#include "log/fake_log.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::BuildPaperToyDatabase;
using testing_util::kAlice;
using testing_util::kDave;
using testing_util::UnwrapOrDie;

StatusOr<ExplanationTemplate> ApptTemplate(const Database& db) {
  return ExplanationTemplate::Parse(
      db, "appt_with_doctor", "Log L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User",
      "[L.Patient] had an appointment with [L.User] on [A.Date]");
}

StatusOr<ExplanationTemplate> DeptTemplate(const Database& db) {
  return ExplanationTemplate::Parse(
      db, "same_dept", "Log L, Appointments A, Doctor_Info I1, Doctor_Info I2",
      "L.Patient = A.Patient AND A.Doctor = I1.Doctor AND "
      "I1.Department = I2.Department AND I2.Doctor = L.User",
      "[L.Patient] had an appointment with [A.Doctor], and [L.User] works "
      "with them in [I1.Department]");
}

// --------------------------- Template ---------------------------

TEST(TemplateTest, ClassificationSimpleVsDecorated) {
  Database db = BuildPaperToyDatabase();
  ExplanationTemplate appt = UnwrapOrDie(ApptTemplate(db));
  EXPECT_TRUE(appt.IsSimple());
  EXPECT_FALSE(appt.IsDecorated());
  EXPECT_EQ(appt.RawLength(), 2);
  EXPECT_EQ(appt.ReportedLength(db), 2);
  EXPECT_EQ(appt.CountedTables(db), 2);

  ExplanationTemplate repeat = UnwrapOrDie(ExplanationTemplate::Parse(
      db, "repeat", "Log L, Log L2",
      "L.Patient = L2.Patient AND L2.User = L.User AND L.Date > L2.Date",
      "repeat access"));
  EXPECT_TRUE(repeat.IsDecorated());
  EXPECT_EQ(repeat.CountedTables(db), 1);  // self-join counts once
}

TEST(TemplateTest, MappingTableExcludedFromCounts) {
  Database db = BuildPaperToyDatabase();
  EBA_ASSERT_OK(db.MarkMappingTable("Doctor_Info"));
  ExplanationTemplate dept = UnwrapOrDie(DeptTemplate(db));
  EXPECT_EQ(dept.RawLength(), 4);
  EXPECT_EQ(dept.ReportedLength(db), 2);  // two Doctor_Info instances
  EXPECT_EQ(dept.CountedTables(db), 2);   // Log + Appointments
}

TEST(TemplateTest, CanonicalKeyNormalizesLogTable) {
  Database db = BuildPaperToyDatabase();
  // A second log table with identical schema.
  EBA_ASSERT_OK(db.CreateTable(AccessLog::StandardSchema("TrainLog")));
  ExplanationTemplate a = UnwrapOrDie(ApptTemplate(db));
  ExplanationTemplate b = UnwrapOrDie(ExplanationTemplate::Parse(
      db, "other_name", "TrainLog L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User", "desc"));
  EXPECT_EQ(UnwrapOrDie(a.CanonicalKey(db)), UnwrapOrDie(b.CanonicalKey(db)));

  ExplanationTemplate c = UnwrapOrDie(DeptTemplate(db));
  EXPECT_NE(UnwrapOrDie(a.CanonicalKey(db)), UnwrapOrDie(c.CanonicalKey(db)));
}

TEST(TemplateTest, CanonicalKeyOrderInvariant) {
  Database db = BuildPaperToyDatabase();
  ExplanationTemplate fwd = UnwrapOrDie(ApptTemplate(db));
  // Same conditions, reversed textual order and flipped sides.
  ExplanationTemplate rev = UnwrapOrDie(ExplanationTemplate::Parse(
      db, "reversed", "Log L, Appointments A",
      "L.User = A.Doctor AND A.Patient = L.Patient", "desc"));
  EXPECT_EQ(UnwrapOrDie(fwd.CanonicalKey(db)),
            UnwrapOrDie(rev.CanonicalKey(db)));
}

TEST(TemplateTest, WithLogTableRebindsAllLogVars) {
  Database db = BuildPaperToyDatabase();
  EBA_ASSERT_OK(db.CreateTable(AccessLog::StandardSchema("Eval")));
  ExplanationTemplate repeat = UnwrapOrDie(ExplanationTemplate::Parse(
      db, "repeat", "Log L, Log L2",
      "L.Patient = L2.Patient AND L2.User = L.User", "desc"));
  ExplanationTemplate rebased = repeat.WithLogTable("Eval");
  EXPECT_EQ(rebased.query().vars[0].table, "Eval");
  EXPECT_EQ(rebased.query().vars[1].table, "Eval");
  EXPECT_TRUE(rebased.query().Validate(db).ok());
}

TEST(TemplateTest, ToSqlRendersCountDistinct) {
  Database db = BuildPaperToyDatabase();
  ExplanationTemplate appt = UnwrapOrDie(ApptTemplate(db));
  SqlRenderOptions opts;
  opts.count_distinct_lid = true;
  std::string sql = UnwrapOrDie(appt.ToSql(db, opts));
  EXPECT_NE(sql.find("COUNT(DISTINCT L.Lid)"), std::string::npos);
}

// --------------------------- Engine + instances ---------------------------

TEST(EngineTest, ExplainProducesRankedNaturalLanguage) {
  Database db = BuildPaperToyDatabase();
  ExplanationEngine engine =
      UnwrapOrDie(ExplanationEngine::Create(&db, "Log"));
  EBA_ASSERT_OK(engine.AddTemplate(UnwrapOrDie(DeptTemplate(db))));
  EBA_ASSERT_OK(engine.AddTemplate(UnwrapOrDie(ApptTemplate(db))));

  // L1 = Dave accessed Alice: explained by both templates.
  std::vector<ExplanationInstance> instances =
      UnwrapOrDie(engine.Explain(1));
  ASSERT_GE(instances.size(), 2u);
  // Ranked ascending by path length: appointment (2) before dept (4).
  EXPECT_EQ(instances[0].tmpl().name(), "appt_with_doctor");
  std::string text = instances[0].ToNaturalLanguage(db);
  EXPECT_NE(text.find("1 had an appointment with 10"), std::string::npos)
      << text;

  // L2 = Dave accessed Bob: only the department template applies.
  std::vector<ExplanationInstance> l2 = UnwrapOrDie(engine.Explain(2));
  ASSERT_GE(l2.size(), 1u);
  EXPECT_EQ(l2[0].tmpl().name(), "same_dept");
  std::string l2_text = l2[0].ToNaturalLanguage(db);
  EXPECT_NE(l2_text.find("Pediatrics"), std::string::npos) << l2_text;
}

TEST(EngineTest, InstanceValueAccessors) {
  Database db = BuildPaperToyDatabase();
  ExplanationEngine engine =
      UnwrapOrDie(ExplanationEngine::Create(&db, "Log"));
  EBA_ASSERT_OK(engine.AddTemplate(UnwrapOrDie(ApptTemplate(db))));
  std::vector<ExplanationInstance> instances =
      UnwrapOrDie(engine.Explain(1));
  ASSERT_EQ(instances.size(), 1u);
  EXPECT_EQ(instances[0].LogId(), Value::Int64(1));
  EXPECT_EQ(instances[0].ValueOf(db, "L", "Patient"), Value::Int64(kAlice));
  EXPECT_EQ(instances[0].ValueOf(db, "L", "User"), Value::Int64(kDave));
  EXPECT_TRUE(instances[0].ValueOf(db, "Z", "Nope").is_null());
}

TEST(EngineTest, UnknownPlaceholderRendersQuestionMark) {
  Database db = BuildPaperToyDatabase();
  ExplanationTemplate tmpl = UnwrapOrDie(ExplanationTemplate::Parse(
      db, "t", "Log L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User",
      "[L.Patient] saw [Z.Nope] and [not-a-placeholder"));
  ExplanationEngine engine =
      UnwrapOrDie(ExplanationEngine::Create(&db, "Log"));
  EBA_ASSERT_OK(engine.AddTemplate(tmpl));
  auto instances = UnwrapOrDie(engine.Explain(1));
  ASSERT_EQ(instances.size(), 1u);
  std::string text = instances[0].ToNaturalLanguage(db);
  EXPECT_NE(text.find("saw ?"), std::string::npos) << text;
  EXPECT_NE(text.find("[not-a-placeholder"), std::string::npos) << text;
}

TEST(EngineTest, ExplainAllReportsCoverageAndUnexplained) {
  Database db = BuildPaperToyDatabase();
  ExplanationEngine engine =
      UnwrapOrDie(ExplanationEngine::Create(&db, "Log"));
  EBA_ASSERT_OK(engine.AddTemplate(UnwrapOrDie(ApptTemplate(db))));
  ExplanationReport report = UnwrapOrDie(engine.ExplainAll());
  EXPECT_EQ(report.log_size, 2u);
  EXPECT_EQ(report.explained_lids, (std::vector<int64_t>{1}));
  EXPECT_EQ(report.unexplained_lids, (std::vector<int64_t>{2}));
  EXPECT_DOUBLE_EQ(report.Coverage(), 0.5);

  EBA_ASSERT_OK(engine.AddTemplate(UnwrapOrDie(DeptTemplate(db))));
  report = UnwrapOrDie(engine.ExplainAll());
  EXPECT_DOUBLE_EQ(report.Coverage(), 1.0);
  EXPECT_TRUE(report.unexplained_lids.empty());
}

// The multithreaded report must be byte-identical to the serial one: same
// per-template counts, same (sorted) explained/unexplained lids. Forcing
// min_rows_per_shard to 1 exercises the shard merge even on the 2-row toy
// log.
TEST(EngineTest, ExplainAllParallelMatchesSerialOnToyDatabase) {
  Database db = BuildPaperToyDatabase();
  ExplanationEngine engine =
      UnwrapOrDie(ExplanationEngine::Create(&db, "Log"));
  EBA_ASSERT_OK(engine.AddTemplate(UnwrapOrDie(ApptTemplate(db))));
  EBA_ASSERT_OK(engine.AddTemplate(UnwrapOrDie(DeptTemplate(db))));

  // ExplainAll is the function under test here: assert on its StatusOr
  // directly (ASSERT semantics) rather than going through UnwrapOrDie.
  EBA_ASSERT_OK_AND_ASSIGN(ExplanationReport serial, engine.ExplainAll());
  for (size_t threads : {size_t{2}, size_t{4}, size_t{8}}) {
    ExplainAllOptions options;
    options.num_threads = threads;
    options.min_rows_per_shard = 1;
    EBA_ASSERT_OK_AND_ASSIGN(ExplanationReport parallel,
                             engine.ExplainAll(options));
    EXPECT_EQ(parallel.log_size, serial.log_size) << threads << " threads";
    EXPECT_EQ(parallel.per_template_counts, serial.per_template_counts)
        << threads << " threads";
    EXPECT_EQ(parallel.explained_lids, serial.explained_lids)
        << threads << " threads";
    EXPECT_EQ(parallel.unexplained_lids, serial.unexplained_lids)
        << threads << " threads";
  }
}

TEST(EngineTest, ExplainAllParallelMatchesSerialOnCareWebLog) {
  CareWebConfig config = CareWebConfig::Small();
  config.num_days = 14;  // ~18k accesses, > the 10k the determinism spec asks
  CareWebData data = UnwrapOrDie(GenerateCareWeb(config));
  const Table* log = UnwrapOrDie(data.db.GetTable("Log"));
  ASSERT_GE(log->num_rows(), 10000u);

  ExplanationEngine engine =
      UnwrapOrDie(ExplanationEngine::Create(&data.db, "Log"));
  for (auto& tmpl : UnwrapOrDie(TemplatesHandcraftedDirect(data.db, true))) {
    EBA_ASSERT_OK(engine.AddTemplate(tmpl));
  }
  ASSERT_GT(engine.num_templates(), 0u);

  EBA_ASSERT_OK_AND_ASSIGN(ExplanationReport serial, engine.ExplainAll());
  EXPECT_EQ(serial.explained_lids.size() + serial.unexplained_lids.size(),
            serial.log_size);

  ExplainAllOptions options;
  options.num_threads = 4;
  EBA_ASSERT_OK_AND_ASSIGN(ExplanationReport parallel,
                           engine.ExplainAll(options));
  EXPECT_EQ(parallel.log_size, serial.log_size);
  EXPECT_EQ(parallel.per_template_counts, serial.per_template_counts);
  EXPECT_EQ(parallel.explained_lids, serial.explained_lids);
  EXPECT_EQ(parallel.unexplained_lids, serial.unexplained_lids);
}

TEST(EngineTest, TemplatesRebindToEngineLog) {
  Database db = BuildPaperToyDatabase();
  // Copy the log into a new table "Audit" and run an engine against it.
  const Table* log = db.GetTable("Log").value();
  Table copy(AccessLog::StandardSchema("Audit"));
  for (size_t r = 0; r < log->num_rows(); ++r) {
    EBA_ASSERT_OK(copy.AppendRow(log->GetRow(r)));
  }
  EBA_ASSERT_OK(db.AddTable(std::move(copy)));

  ExplanationEngine engine =
      UnwrapOrDie(ExplanationEngine::Create(&db, "Audit"));
  EBA_ASSERT_OK(engine.AddTemplate(UnwrapOrDie(ApptTemplate(db))));
  EXPECT_EQ(engine.templates()[0].query().vars[0].table, "Audit");
  auto lids = UnwrapOrDie(engine.ExplainedLids(0));
  EXPECT_EQ(lids, (std::vector<int64_t>{1}));
}

// --------------------------- Metrics ---------------------------

TEST(MetricsTest, PrecisionRecallDefinitions) {
  PrecisionRecall pr;
  pr.real_total = 100;
  pr.fake_total = 100;
  pr.real_explained = 40;
  pr.fake_explained = 10;
  pr.real_with_events = 80;
  EXPECT_DOUBLE_EQ(pr.Recall(), 0.4);
  EXPECT_DOUBLE_EQ(pr.Precision(), 0.8);
  EXPECT_DOUBLE_EQ(pr.NormalizedRecall(), 0.5);

  PrecisionRecall empty;
  EXPECT_DOUBLE_EQ(empty.Precision(), 1.0);  // nothing claimed, nothing wrong
  EXPECT_DOUBLE_EQ(empty.Recall(), 0.0);
}

TEST(MetricsTest, EvaluateOnCombinedToyLog) {
  Database db = BuildPaperToyDatabase();

  // Fake log: one access that cannot match any appointment (user 99).
  Table fake(AccessLog::StandardSchema("FakePart"));
  EBA_ASSERT_OK(fake.AppendRow({Value::Int64(100), Value::Timestamp(1000),
                                Value::Int64(99), Value::Int64(kAlice),
                                Value::String("viewed")}));
  const Table* real = db.GetTable("Log").value();
  CombinedLog combined = UnwrapOrDie(CombineRealAndFake("Eval", *real, fake));
  EBA_ASSERT_OK(db.AddTable(std::move(combined.table)));

  MetricsEvaluator evaluator(&db, "Eval");
  std::vector<ExplanationTemplate> templates = {
      UnwrapOrDie(ApptTemplate(db))};
  PrecisionRecall pr = UnwrapOrDie(evaluator.Evaluate(
      templates, combined.real_lids, combined.fake_lids,
      combined.real_lids));
  EXPECT_EQ(pr.real_explained, 1u);  // only L1
  EXPECT_EQ(pr.fake_explained, 0u);
  EXPECT_DOUBLE_EQ(pr.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(pr.Recall(), 0.5);
}

TEST(MetricsTest, LidsWithEvent) {
  Database db = BuildPaperToyDatabase();
  MetricsEvaluator evaluator(&db, "Log");
  auto lids = UnwrapOrDie(evaluator.LidsWithEvent("Appointments", "Patient"));
  // Both Alice and Bob have appointments.
  EXPECT_EQ(lids, (std::vector<int64_t>{1, 2}));
  auto any = UnwrapOrDie(
      evaluator.LidsWithAnyEvent({{"Appointments", "Patient"}}));
  EXPECT_EQ(any, lids);
}

}  // namespace
}  // namespace eba
