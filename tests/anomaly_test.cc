// Tests for the user-level anomaly baseline (graph/anomaly.h): scoring
// semantics, ordering, and the paper's §6 contrast — isolated misuse does
// not perturb a user's profile score, while a bulk snooper stands out.

#include <gtest/gtest.h>

#include "careweb/generator.h"
#include "graph/anomaly.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::UnwrapOrDie;

/// Log where users 1,2,3 form a tight team (share patients) and user 9
/// accesses only records nobody else touches.
Table MakeTeamPlusLonerLog() {
  Table log(AccessLog::StandardSchema("Log"));
  struct A {
    int64_t user;
    int64_t patient;
  };
  const A accesses[] = {
      {1, 100}, {2, 100}, {3, 100}, {1, 101}, {2, 101},
      {3, 101}, {1, 102}, {2, 102}, {9, 900}, {9, 901},
  };
  int64_t lid = 1;
  for (const auto& a : accesses) {
    Status s = log.AppendRow({Value::Int64(lid), Value::Timestamp(lid * 60),
                              Value::Int64(a.user), Value::Int64(a.patient),
                              Value::String("v")});
    EBA_CHECK(s.ok());
    ++lid;
  }
  return log;
}

TEST(AnomalyTest, LonerScoresHigherThanTeamMembers) {
  Table table = MakeTeamPlusLonerLog();
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(&table));
  UserGraph graph = UnwrapOrDie(UserGraph::Build(log));
  auto scores = UnwrapOrDie(ScoreUsersByDeviation(graph, log));
  ASSERT_EQ(scores.size(), 4u);
  // Most anomalous first: the loner (user 9, zero neighbors).
  EXPECT_EQ(scores[0].user, 9);
  EXPECT_EQ(scores[0].neighborhood_similarity, 0.0);
  EXPECT_DOUBLE_EQ(scores[0].score, 1.0);
  for (size_t i = 1; i < scores.size(); ++i) {
    EXPECT_LT(scores[i].score, 1.0);
    EXPECT_GT(scores[i].neighborhood_similarity, 0.0);
  }
  EXPECT_EQ(RankOfUser(scores, 9), 1u);
  EXPECT_EQ(RankOfUser(scores, 12345), 0u);
}

TEST(AnomalyTest, AccessCountsReported) {
  Table table = MakeTeamPlusLonerLog();
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(&table));
  UserGraph graph = UnwrapOrDie(UserGraph::Build(log));
  auto scores = UnwrapOrDie(ScoreUsersByDeviation(graph, log));
  for (const auto& s : scores) {
    if (s.user == 1) {
      EXPECT_EQ(s.num_accesses, 3u);
    }
    if (s.user == 9) {
      EXPECT_EQ(s.num_accesses, 2u);
    }
  }
}

TEST(AnomalyTest, InvalidOptionsRejected) {
  Table table = MakeTeamPlusLonerLog();
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(&table));
  UserGraph graph = UnwrapOrDie(UserGraph::Build(log));
  AnomalyOptions options;
  options.k_nearest = 0;
  EXPECT_FALSE(ScoreUsersByDeviation(graph, log, options).ok());
}

TEST(AnomalyTest, IsolatedMisuseBarelyMovesProfile) {
  // The §6 contrast: one extra bad access does not change a team member's
  // neighborhood similarity much, so their rank stays deep in the pack.
  CareWebData data = UnwrapOrDie(GenerateCareWeb(CareWebConfig::Tiny()));
  Table* log_table = data.db.GetTable("Log").value();
  AccessLog before_log = UnwrapOrDie(AccessLog::Wrap(log_table));
  UserGraph before_graph = UnwrapOrDie(UserGraph::Build(before_log));
  auto before = UnwrapOrDie(ScoreUsersByDeviation(before_graph, before_log));

  // A nurse on team 0 snoops once on a random patient.
  int64_t snoop = data.truth.teams[0].members.back();
  int64_t victim = data.truth.all_patients.back();
  EBA_ASSERT_OK(log_table->AppendRow(
      {Value::Int64(1000000), Value::Timestamp(before_log.MaxTime() + 60),
       Value::Int64(snoop), Value::Int64(victim), Value::String("v")}));

  AccessLog after_log = UnwrapOrDie(AccessLog::Wrap(log_table));
  UserGraph after_graph = UnwrapOrDie(UserGraph::Build(after_log));
  auto after = UnwrapOrDie(ScoreUsersByDeviation(after_graph, after_log));

  size_t rank_before = RankOfUser(before, snoop);
  size_t rank_after = RankOfUser(after, snoop);
  ASSERT_GT(rank_before, 0u);
  ASSERT_GT(rank_after, 0u);
  // The rank moves by at most a modest amount; the user does NOT jump into
  // the top decile because of one access.
  EXPECT_GT(rank_after, after.size() / 10);
}

TEST(AnomalyTest, DeterministicOrdering) {
  Table table = MakeTeamPlusLonerLog();
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(&table));
  UserGraph graph = UnwrapOrDie(UserGraph::Build(log));
  auto a = UnwrapOrDie(ScoreUsersByDeviation(graph, log));
  auto b = UnwrapOrDie(ScoreUsersByDeviation(graph, log));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_DOUBLE_EQ(a[i].score, b[i].score);
  }
}

}  // namespace
}  // namespace eba
