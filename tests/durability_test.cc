// Durability subsystem tests: CRC32 vectors, WAL framing with torn-tail and
// bit-flip corruption at every byte, checkpoint full/incremental chains,
// crash-safe SaveDatabase, and the headline suite — a deterministic process
// kill at EVERY write-class syscall boundary of a durable streaming-audit
// schedule, followed by recovery and a differential check against a fresh
// ExplainAll oracle on a cloned database.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "careweb/generator.h"
#include "careweb/workload.h"
#include "common/crc32.h"
#include "core/engine.h"
#include "core/ingest.h"
#include "log/access_log.h"
#include "storage/checkpoint.h"
#include "storage/io.h"
#include "storage/persist.h"
#include "storage/wal.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::BuildPaperToyDatabase;
using testing_util::CloneDatabase;
using testing_util::UnwrapOrDie;

std::string TempDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  (void)RealEnv()->RemoveAll(dir);
  EXPECT_TRUE(RealEnv()->CreateDirs(dir).ok());
  return dir;
}

std::string ReadBytes(const std::string& path) {
  return UnwrapOrDie(RealEnv()->ReadFileToString(path), path.c_str());
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  const Status s = RealEnv()->WriteFile(path, bytes);
  EBA_CHECK_MSG(s.ok(), s.ToString());
}

// ---------------------------------------------------------------------------
// CRC32

TEST(Crc32Test, KnownVectorAndIncremental) {
  // The canonical CRC-32 (IEEE 802.3) check value.
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  // Incremental == one-shot.
  const uint32_t part = Crc32("12345");
  EXPECT_EQ(Crc32(std::string_view("6789"), part), Crc32("123456789"));
  // Sensitive to any byte change.
  EXPECT_NE(Crc32("123456789"), Crc32("123456788"));
}

// ---------------------------------------------------------------------------
// WAL framing

std::vector<Row> SampleRows() {
  std::vector<Row> rows;
  rows.push_back({Value::Int64(42), Value::Timestamp(1234567890),
                  Value::String("viewed record"), Value::Bool(true)});
  rows.push_back({Value::Int64(-7), Value::Double(3.25), Value::Null(),
                  Value::String("")});
  return rows;
}

void ExpectRowsEqual(const std::vector<Row>& got,
                     const std::vector<Row>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t r = 0; r < got.size(); ++r) {
    ASSERT_EQ(got[r].size(), want[r].size()) << "row " << r;
    for (size_t c = 0; c < got[r].size(); ++c) {
      EXPECT_TRUE(got[r][c] == want[r][c])
          << "row " << r << " col " << c << ": " << got[r][c].ToString()
          << " vs " << want[r][c].ToString();
    }
  }
}

TEST(WalTest, RoundTripAllValueTypes) {
  const std::string dir = TempDir("wal_roundtrip");
  const std::string path = dir + "/wal-1.log";
  const std::vector<Row> rows = SampleRows();
  {
    auto wal = UnwrapOrDie(WalWriter::Open(RealEnv(), path, WalSync::kBatch));
    EBA_ASSERT_OK(wal->AppendRecord(kWalAppendBatch,
                                    EncodeAppendPayload("Log", rows)));
    EBA_ASSERT_OK(wal->AppendRecord(kWalAppendBatch,
                                    EncodeAppendPayload("Visits", {})));
    EBA_ASSERT_OK(wal->Commit());
    EBA_ASSERT_OK(wal->Close());
  }
  const WalReadResult read = UnwrapOrDie(ReadWalFile(RealEnv(), path));
  ASSERT_EQ(read.records.size(), 2u);
  EXPECT_EQ(read.dropped_bytes, 0u);
  EXPECT_EQ(read.valid_bytes, ReadBytes(path).size());

  const WalAppendBatch b0 =
      UnwrapOrDie(DecodeAppendPayload(read.records[0].payload));
  EXPECT_EQ(b0.table_name, "Log");
  ExpectRowsEqual(b0.rows, rows);
  const WalAppendBatch b1 =
      UnwrapOrDie(DecodeAppendPayload(read.records[1].payload));
  EXPECT_EQ(b1.table_name, "Visits");
  EXPECT_TRUE(b1.rows.empty());
}

TEST(WalTest, ReopenAppends) {
  const std::string dir = TempDir("wal_reopen");
  const std::string path = dir + "/wal-1.log";
  for (int i = 0; i < 3; ++i) {
    auto wal = UnwrapOrDie(WalWriter::Open(RealEnv(), path, WalSync::kAlways));
    EBA_ASSERT_OK(wal->AppendRecord(
        kWalAppendBatch, EncodeAppendPayload("Log", SampleRows())));
    EBA_ASSERT_OK(wal->Close());
  }
  const WalReadResult read = UnwrapOrDie(ReadWalFile(RealEnv(), path));
  EXPECT_EQ(read.records.size(), 3u);
  EXPECT_EQ(read.dropped_bytes, 0u);
}

/// Writes a two-record WAL and returns (file bytes, first record's framed
/// size) so corruption tests know the record boundary.
std::pair<std::string, size_t> TwoRecordWal(const std::string& dir) {
  const std::string path = dir + "/wal-1.log";
  const std::string p0 = EncodeAppendPayload("Log", SampleRows());
  auto wal = UnwrapOrDie(WalWriter::Open(RealEnv(), path, WalSync::kNone));
  EBA_CHECK(wal->AppendRecord(kWalAppendBatch, p0).ok());
  EBA_CHECK(
      wal->AppendRecord(kWalAppendBatch, EncodeAppendPayload("Visits", {}))
          .ok());
  EBA_CHECK(wal->Close().ok());
  const size_t kHeader = 9;  // u32 len + u32 crc + u8 type
  return {ReadBytes(path), kHeader + p0.size()};
}

TEST(WalTest, TornTailTruncatedAtEveryPrefix) {
  const std::string dir = TempDir("wal_torn");
  const auto [full, first_end] = TwoRecordWal(dir);
  const std::string path = dir + "/cut.log";
  for (size_t cut = 0; cut <= full.size(); ++cut) {
    WriteBytes(path, full.substr(0, cut));
    const WalReadResult read = UnwrapOrDie(ReadWalFile(RealEnv(), path));
    // Exactly the records wholly inside the prefix survive; the torn
    // remainder is reported, never turned into a record.
    size_t want = 0;
    if (cut >= full.size()) want = 2;
    else if (cut >= first_end) want = 1;
    ASSERT_EQ(read.records.size(), want) << "cut at byte " << cut;
    const uint64_t want_valid = want == 2 ? full.size()
                                : want == 1 ? first_end
                                            : 0;
    EXPECT_EQ(read.valid_bytes, want_valid) << "cut at byte " << cut;
    EXPECT_EQ(read.dropped_bytes, cut - want_valid) << "cut at byte " << cut;
  }
}

TEST(WalTest, BitFlipAnywhereIsDetectedAndTruncated) {
  const std::string dir = TempDir("wal_bitflip");
  const auto [full, first_end] = TwoRecordWal(dir);
  const std::string path = dir + "/flip.log";
  for (size_t off = 0; off < full.size(); ++off) {
    std::string bytes = full;
    bytes[off] = static_cast<char>(bytes[off] ^ 0x40);
    WriteBytes(path, bytes);
    const WalReadResult read = UnwrapOrDie(ReadWalFile(RealEnv(), path));
    // The CRC stops the reader at the record containing the flip: records
    // strictly before it survive, it and everything after are dropped.
    const size_t want = off < first_end ? 0 : 1;
    ASSERT_LE(read.records.size(), want) << "flip at byte " << off;
    EXPECT_EQ(read.valid_bytes + read.dropped_bytes, full.size());
    if (read.records.size() == 1) {
      // The surviving record must be byte-identical to the original.
      const WalAppendBatch b =
          UnwrapOrDie(DecodeAppendPayload(read.records[0].payload));
      EXPECT_EQ(b.table_name, "Log");
    }
  }
}

// ---------------------------------------------------------------------------
// Checkpoint store

AuditState MakeAuditState(uint64_t audited, std::vector<int64_t> lids,
                          const Database& db) {
  AuditState a;
  a.audited_rows = audited;
  a.explained_lids = std::move(lids);
  for (const std::string& name : db.TableNames()) {
    a.audit_watermarks[name] = db.GetTable(name).value()->num_rows();
  }
  return a;
}

void ExpectDbRowsEqual(const Database& got, const Database& want) {
  ASSERT_EQ(got.TableNames(), want.TableNames());
  for (const std::string& name : want.TableNames()) {
    const Table* g = got.GetTable(name).value();
    const Table* w = want.GetTable(name).value();
    ASSERT_EQ(g->num_rows(), w->num_rows()) << name;
    for (size_t r = 0; r < w->num_rows(); ++r) {
      const Row grow = g->GetRow(r);
      const Row wrow = w->GetRow(r);
      ASSERT_EQ(grow.size(), wrow.size()) << name << " row " << r;
      for (size_t c = 0; c < wrow.size(); ++c) {
        ASSERT_TRUE(grow[c] == wrow[c])
            << name << " row " << r << " col " << c;
      }
    }
  }
}

TEST(CheckpointTest, FullAndIncrementalChainRoundTrip) {
  const std::string dir = TempDir("ckpt_chain");
  Database db = BuildPaperToyDatabase();
  CheckpointStore store(RealEnv(), dir);
  EBA_ASSERT_OK(store.Init());
  EXPECT_EQ(store.CurrentSeq().status().code(), StatusCode::kNotFound);

  // Full root.
  const uint64_t s1 = UnwrapOrDie(
      store.Prepare(db, MakeAuditState(2, {1}, db), /*full=*/true));
  ASSERT_EQ(s1, 1u);
  EBA_ASSERT_OK(store.Publish(s1));
  EXPECT_EQ(UnwrapOrDie(store.CurrentSeq()), 1u);

  // Two incremental links, each appending rows to a different table.
  Table* log = db.GetTable("Log").value();
  EBA_ASSERT_OK(log->AppendRow({Value::Int64(3), Value::Timestamp(1000),
                                Value::Int64(testing_util::kMike),
                                Value::Int64(testing_util::kAlice),
                                Value::String("viewed record")}));
  const uint64_t s2 = UnwrapOrDie(
      store.Prepare(db, MakeAuditState(3, {1, 3}, db), /*full=*/false));
  ASSERT_EQ(s2, 2u);
  EBA_ASSERT_OK(store.Publish(s2));

  Table* appt = db.GetTable("Appointments").value();
  EBA_ASSERT_OK(appt->AppendRow({Value::Int64(testing_util::kBob),
                                 Value::Timestamp(2000),
                                 Value::Int64(testing_util::kDave)}));
  const AuditState a3 = MakeAuditState(3, {1, 2, 3}, db);
  const uint64_t s3 = UnwrapOrDie(store.Prepare(db, a3, /*full=*/false));
  ASSERT_EQ(s3, 3u);
  EBA_ASSERT_OK(store.Publish(s3));

  // The chain root must survive GC (seq 2 and 3 depend on it).
  const auto entries = UnwrapOrDie(RealEnv()->ListDir(dir));
  EXPECT_TRUE(std::count(entries.begin(), entries.end(), "ckpt-1"));

  CheckpointContents loaded = UnwrapOrDie(store.LoadNewest());
  EXPECT_EQ(loaded.seq, 3u);
  EXPECT_EQ(loaded.wal_seq, 3u);
  EXPECT_EQ(loaded.chain_length, 3u);
  EXPECT_EQ(loaded.audit.audited_rows, a3.audited_rows);
  EXPECT_EQ(loaded.audit.explained_lids, a3.explained_lids);
  EXPECT_EQ(loaded.audit.audit_watermarks, a3.audit_watermarks);
  ExpectDbRowsEqual(loaded.db, db);

  // A forced full checkpoint retires the old chain entirely.
  const uint64_t s4 = UnwrapOrDie(store.Prepare(db, a3, /*full=*/true));
  ASSERT_EQ(s4, 4u);
  EBA_ASSERT_OK(store.Publish(s4));
  const auto after = UnwrapOrDie(RealEnv()->ListDir(dir));
  EXPECT_FALSE(std::count(after.begin(), after.end(), "ckpt-1"));
  EXPECT_FALSE(std::count(after.begin(), after.end(), "ckpt-3"));
  EXPECT_TRUE(std::count(after.begin(), after.end(), "ckpt-4"));
  ExpectDbRowsEqual(UnwrapOrDie(store.LoadNewest()).db, db);
}

TEST(CheckpointTest, CorruptManifestIsRejected) {
  const std::string dir = TempDir("ckpt_corrupt");
  Database db = BuildPaperToyDatabase();
  CheckpointStore store(RealEnv(), dir);
  EBA_ASSERT_OK(store.Init());
  EBA_ASSERT_OK(
      store.Publish(UnwrapOrDie(store.Prepare(db, AuditState{}, true))));
  const std::string manifest = dir + "/ckpt-1/ckpt.txt";
  std::string bytes = ReadBytes(manifest);
  bytes[bytes.size() / 2] ^= 0x01;
  WriteBytes(manifest, bytes);
  // CURRENT names a synced checkpoint, so a bad manifest CRC is real damage
  // — a hard error, not a silent fallback.
  EXPECT_FALSE(store.LoadNewest().ok());
}

TEST(CheckpointTest, UnpublishedCheckpointIsInvisible) {
  const std::string dir = TempDir("ckpt_unpublished");
  Database db = BuildPaperToyDatabase();
  CheckpointStore store(RealEnv(), dir);
  EBA_ASSERT_OK(store.Init());
  (void)UnwrapOrDie(store.Prepare(db, AuditState{}, true));
  // Prepared but never published: recovery sees nothing.
  EXPECT_EQ(store.CurrentSeq().status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.LoadNewest().status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Crash-safe SaveDatabase

TEST(SaveDatabaseTest, KillAtEveryWriteOpIsAtomic) {
  const std::string root = TempDir("save_atomic");
  const std::string dir = root + "/db";
  Database old_db = BuildPaperToyDatabase();
  Database new_db = BuildPaperToyDatabase();
  EBA_ASSERT_OK(new_db.GetTable("Appointments")
                    .value()
                    ->AppendRow({Value::Int64(99), Value::Timestamp(5),
                                 Value::Int64(98)}));
  const size_t old_rows = 2, new_rows = 3;

  // Dry run to count the write boundaries of one save-over-save.
  FaultInjectingEnv fenv;
  EBA_ASSERT_OK(SaveDatabase(old_db, dir, RealEnv()));
  fenv.DisarmKill();
  EBA_ASSERT_OK(SaveDatabase(new_db, dir, &fenv));
  const uint64_t total_ops = fenv.write_ops();
  ASSERT_GT(total_ops, 5u);

  for (uint64_t k = 0; k < total_ops; ++k) {
    EBA_ASSERT_OK(RealEnv()->RemoveAll(root));
    EBA_ASSERT_OK(RealEnv()->CreateDirs(root));
    EBA_ASSERT_OK(SaveDatabase(old_db, dir, RealEnv()));
    fenv.ScheduleKill(k);
    ASSERT_FALSE(SaveDatabase(new_db, dir, &fenv).ok()) << "kill op " << k;
    ASSERT_TRUE(fenv.dead());

    // After the crash, `dir` must load as exactly the old or exactly the
    // new database — never a torn mix. The only other legal observation is
    // the instant between the two renames, where the complete old image
    // still exists under the `.old` name.
    StatusOr<Database> loaded = LoadDatabase(dir);
    if (!loaded.ok()) {
      ASSERT_EQ(loaded.status().code(), StatusCode::kNotFound)
          << "kill op " << k << ": " << loaded.status().ToString();
      loaded = LoadDatabase(dir + ".old");
      ASSERT_TRUE(loaded.ok())
          << "kill op " << k << ": neither db nor db.old loadable";
    }
    const size_t rows =
        loaded.value().GetTable("Appointments").value()->num_rows();
    EXPECT_TRUE(rows == old_rows || rows == new_rows)
        << "kill op " << k << ": torn save visible (" << rows << " rows)";
  }
}

// ---------------------------------------------------------------------------
// Kill -9 at every write boundary of a durable streaming-audit schedule

struct DurFixture {
  CareWebData data;
  std::vector<Row> backlog;  // non-seeded Log rows, in order
  std::vector<ExplanationTemplate> templates;
};

DurFixture MakeDurFixture() {
  DurFixture f;
  f.data = UnwrapOrDie(GenerateCareWeb(CareWebConfig::Tiny()));
  const Table* log = UnwrapOrDie(f.data.db.GetTable("Log"));
  AccessLog source = UnwrapOrDie(AccessLog::Wrap(log));
  (void)UnwrapOrDie(AddLogSlice(&f.data.db, "Log", "LogStream", 1, 2,
                                /*first_only=*/false));
  std::vector<size_t> seeded = source.RowsInDayRange(1, 2);
  std::sort(seeded.begin(), seeded.end());
  for (size_t r = 0; r < log->num_rows(); ++r) {
    if (!std::binary_search(seeded.begin(), seeded.end(), r)) {
      f.backlog.push_back(log->GetRow(r));
    }
  }
  f.templates = UnwrapOrDie(TemplatesHandcraftedDirect(f.data.db, true));
  return f;
}

StreamingOptions SmallStreamingOptions() {
  StreamingOptions options;
  options.min_rows_per_shard = 1;
  options.executor.min_rows_per_morsel = 1;
  return options;
}

/// A fixed durable serving schedule: appends (log + foreign), audits, and an
/// explicit checkpoint. Deterministic, so the dry run and every kill run
/// issue the identical write-op sequence up to the kill point. Reports rows
/// whose append was acknowledged (returned OK) — those are committed to the
/// WAL and recovery must preserve them.
Status RunDurableSchedule(StreamingAuditor* auditor, const DurFixture& f,
                          size_t* acked_log_rows) {
  const StreamingOptions options = SmallStreamingOptions();
  size_t pos = 0;
  auto next_batch = [&](size_t n) {
    std::vector<Row> rows;
    for (; n > 0 && pos < f.backlog.size(); --n) {
      rows.push_back(f.backlog[pos++]);
    }
    return rows;
  };
  auto append_log = [&](size_t n) -> Status {
    const std::vector<Row> rows = next_batch(n);
    EBA_RETURN_IF_ERROR(auditor->AppendAccessBatch(rows));
    *acked_log_rows += rows.size();
    return Status::OK();
  };
  auto append_foreign = [&](const std::string& table) -> Status {
    // Re-append an existing row: trivially valid and joinable.
    const Table* t = UnwrapOrDie(
        static_cast<const Database&>(f.data.db).GetTable(table));
    return auditor->AppendRows(table, {t->GetRow(0)});
  };
  auto audit = [&]() -> Status {
    return auditor->ExplainNew(options).status();
  };

  EBA_RETURN_IF_ERROR(append_log(4));
  EBA_RETURN_IF_ERROR(audit());
  EBA_RETURN_IF_ERROR(append_log(4));
  EBA_RETURN_IF_ERROR(append_foreign("Appointments"));
  EBA_RETURN_IF_ERROR(audit());
  EBA_RETURN_IF_ERROR(auditor->Checkpoint(/*full=*/false));
  EBA_RETURN_IF_ERROR(append_log(4));
  EBA_RETURN_IF_ERROR(append_foreign("Visits"));
  EBA_RETURN_IF_ERROR(audit());
  // Unaudited tail: committed to the WAL but never audited before the
  // crash — recovery must replay it and the converging audit must cover it.
  EBA_RETURN_IF_ERROR(append_log(4));
  return Status::OK();
}

/// Differential acceptance check: every audited access of the recovered
/// auditor classifies identically to a fresh full ExplainAll on a cloned
/// copy of the recovered database.
void CheckRecoveredAgainstOracle(const Database& db,
                                 const std::vector<ExplanationTemplate>& tmpls,
                                 const StreamingAuditor& auditor,
                                 uint64_t kill_op) {
  Database clone = CloneDatabase(db);
  ExplanationEngine oracle =
      UnwrapOrDie(ExplanationEngine::Create(&clone, "LogStream"));
  for (const auto& tmpl : tmpls) EBA_ASSERT_OK(oracle.AddTemplate(tmpl));
  const ExplanationReport full = UnwrapOrDie(oracle.ExplainAll());
  std::vector<int64_t> full_explained = full.explained_lids;
  std::sort(full_explained.begin(), full_explained.end());

  const Table* stream =
      UnwrapOrDie(static_cast<const Database&>(db).GetTable("LogStream"));
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(stream));
  ASSERT_EQ(auditor.audited_rows(), stream->num_rows())
      << "kill op " << kill_op << ": converging audit left rows unaudited";
  for (size_t r = 0; r < stream->num_rows(); ++r) {
    const int64_t lid = log.Get(r).lid;
    const bool streamed = auditor.IsExplained(lid);
    const bool expected = std::binary_search(full_explained.begin(),
                                             full_explained.end(), lid);
    ASSERT_EQ(streamed, expected)
        << "kill op " << kill_op << " row " << r << " lid " << lid
        << ": recovered auditor says "
        << (streamed ? "explained" : "unexplained")
        << ", fresh ExplainAll on a clone says the opposite";
  }
}

TEST(DurabilityTest, KillAtEveryWriteOpRecoversAndConverges) {
  const DurFixture master = MakeDurFixture();
  const std::string dir = TempDir("kill_recover");
  DurabilityOptions opts;
  opts.dir = dir;
  opts.sync = WalSync::kNone;  // the fault model: process kill, not power loss
  opts.checkpoint_after_wal_bytes = 512;  // force auto-checkpoints mid-run
  opts.full_checkpoint_interval = 2;      // exercise full + incremental mix

  // Dry run: count the write-class operations of the whole schedule.
  FaultInjectingEnv fenv;
  uint64_t total_ops = 0;
  {
    EBA_ASSERT_OK(RealEnv()->RemoveAll(dir));
    Database db = CloneDatabase(master.data.db);
    StreamingAuditor auditor =
        UnwrapOrDie(StreamingAuditor::Create(&db, "LogStream"));
    for (const auto& t : master.templates) {
      EBA_ASSERT_OK(auditor.AddTemplate(t));
    }
    fenv.DisarmKill();
    DurabilityOptions dry = opts;
    dry.env = &fenv;
    EBA_ASSERT_OK(auditor.EnableDurability(dry));
    size_t acked = 0;
    EBA_ASSERT_OK(RunDurableSchedule(&auditor, master, &acked));
    total_ops = fenv.write_ops();
    ASSERT_EQ(acked, 16u);
  }
  ASSERT_GT(total_ops, 20u) << "schedule exercises too few write boundaries";

  const size_t seeded_rows = UnwrapOrDie(static_cast<const Database&>(
                                             master.data.db)
                                             .GetTable("LogStream"))
                                 ->num_rows();
  bool any_recovered = false, any_replayed = false, any_truncated = false;
  for (uint64_t k = 0; k < total_ops; ++k) {
    EBA_ASSERT_OK(RealEnv()->RemoveAll(dir));
    size_t acked = 0;
    {
      Database db = CloneDatabase(master.data.db);
      StreamingAuditor auditor =
          UnwrapOrDie(StreamingAuditor::Create(&db, "LogStream"));
      for (const auto& t : master.templates) {
        EBA_ASSERT_OK(auditor.AddTemplate(t));
      }
      fenv.ScheduleKill(k);
      DurabilityOptions faulty = opts;
      faulty.env = &fenv;
      Status s = auditor.EnableDurability(faulty);
      if (s.ok()) s = RunDurableSchedule(&auditor, master, &acked);
      ASSERT_FALSE(s.ok()) << "kill op " << k << " never fired";
      ASSERT_TRUE(fenv.dead());
    }  // the process "dies": in-memory auditor and database are gone

    // Restart: recover from disk with the real filesystem.
    Database db = CloneDatabase(master.data.db);
    DurabilityOptions ropts = opts;
    ropts.env = nullptr;
    RecoveryStats stats;
    EBA_ASSERT_OK_AND_ASSIGN(
        StreamingAuditor recovered,
        StreamingAuditor::RecoverFrom(&db, "LogStream", ropts, &stats));
    any_recovered |= stats.recovered;
    any_replayed |= stats.wal_records_replayed > 0;
    any_truncated |= stats.wal_bytes_truncated > 0;

    // Every acknowledged append was WAL-committed before it returned, so it
    // must survive the crash (checkpointed or replayed).
    if (stats.recovered) {
      const Table* stream = UnwrapOrDie(
          static_cast<const Database&>(db).GetTable("LogStream"));
      EXPECT_GE(stream->num_rows(), seeded_rows + acked) << "kill op " << k;
    }

    for (const auto& t : master.templates) {
      EBA_ASSERT_OK(recovered.AddTemplate(t));
    }
    (void)UnwrapOrDie(recovered.ExplainNew(SmallStreamingOptions()));
    CheckRecoveredAgainstOracle(db, master.templates, recovered, k);
    if (::testing::Test::HasFatalFailure()) return;

    // The recovered auditor is live: it can keep appending and auditing
    // durably.
    EBA_ASSERT_OK(recovered.AppendAccessBatch({master.backlog.back()}));
    (void)UnwrapOrDie(recovered.ExplainNew(SmallStreamingOptions()));
  }
  // The sweep must have crossed all three recovery regimes somewhere.
  EXPECT_TRUE(any_recovered);
  EXPECT_TRUE(any_replayed);
  EXPECT_TRUE(any_truncated);
}

TEST(DurabilityTest, FreshStartThenRestartResumesFromCheckpoint) {
  const DurFixture master = MakeDurFixture();
  const std::string dir = TempDir("restart_resume");
  EBA_ASSERT_OK(RealEnv()->RemoveAll(dir));
  DurabilityOptions opts;
  opts.dir = dir;
  opts.sync = WalSync::kBatch;
  opts.checkpoint_after_wal_bytes = 0;  // manual checkpoints only

  size_t acked = 0;
  {
    Database db = CloneDatabase(master.data.db);
    StreamingAuditor auditor =
        UnwrapOrDie(StreamingAuditor::Create(&db, "LogStream"));
    for (const auto& t : master.templates) {
      EBA_ASSERT_OK(auditor.AddTemplate(t));
    }
    RecoveryStats stats;
    // No checkpoint yet: RecoverFrom must report a fresh start.
    EBA_ASSERT_OK_AND_ASSIGN(
        StreamingAuditor fresh,
        StreamingAuditor::RecoverFrom(&db, "LogStream", opts, &stats));
    EXPECT_FALSE(stats.recovered);
    EXPECT_TRUE(fresh.durable());
    for (const auto& t : master.templates) {
      EBA_ASSERT_OK(fresh.AddTemplate(t));
    }
    size_t pos = 0;
    auto batch = [&](size_t n) {
      std::vector<Row> rows;
      for (; n > 0 && pos < master.backlog.size(); --n) {
        rows.push_back(master.backlog[pos++]);
      }
      return rows;
    };
    EBA_ASSERT_OK(fresh.AppendAccessBatch(batch(6)));
    (void)UnwrapOrDie(fresh.ExplainNew(SmallStreamingOptions()));
    EBA_ASSERT_OK(fresh.Checkpoint());
    EBA_ASSERT_OK(fresh.AppendAccessBatch(batch(6)));  // WAL-only tail
    acked = pos;
  }

  Database db = CloneDatabase(master.data.db);
  RecoveryStats stats;
  EBA_ASSERT_OK_AND_ASSIGN(
      StreamingAuditor recovered,
      StreamingAuditor::RecoverFrom(&db, "LogStream", opts, &stats));
  EXPECT_TRUE(stats.recovered);
  EXPECT_GT(stats.wal_rows_replayed, 0u);
  const size_t seeded_rows = UnwrapOrDie(static_cast<const Database&>(
                                             master.data.db)
                                             .GetTable("LogStream"))
                                 ->num_rows();
  const Table* stream =
      UnwrapOrDie(static_cast<const Database&>(db).GetTable("LogStream"));
  EXPECT_EQ(stream->num_rows(), seeded_rows + acked);
  for (const auto& t : master.templates) {
    EBA_ASSERT_OK(recovered.AddTemplate(t));
  }
  (void)UnwrapOrDie(recovered.ExplainNew(SmallStreamingOptions()));
  CheckRecoveredAgainstOracle(db, master.templates, recovered, ~uint64_t{0});
}

// Regression: every crash/recover cycle opens a fresh WAL above the highest
// sequence it replayed, and the next checkpoint must allocate *past* that
// WAL. The pre-fix code seeded the replay watermark from the checkpoint's
// own sequence and let Prepare reuse CurrentSeq()+1, so after two recovery
// generations a checkpoint could pair itself with a stale recovery WAL —
// whose already-checkpointed records the next recovery replayed again,
// duplicating rows. Exact row-count equality (not >=) is the assertion that
// catches it.
TEST(DurabilityTest, KillRecoverCheckpointKillKeepsRowCountExact) {
  const DurFixture master = MakeDurFixture();
  const std::string dir = TempDir("recover_ckpt_seq");
  DurabilityOptions opts;
  opts.dir = dir;
  opts.sync = WalSync::kNone;  // fault model: process kill
  opts.checkpoint_after_wal_bytes = 0;  // manual checkpoints only

  size_t pos = 0;
  auto batch = [&](size_t n) {
    std::vector<Row> rows;
    for (; n > 0 && pos < master.backlog.size(); --n) {
      rows.push_back(master.backlog[pos++]);
    }
    return rows;
  };

  // Generation 1: fresh start (checkpoint + first WAL), one acked batch,
  // then the process "dies" (auditor dropped without checkpointing).
  {
    Database db = CloneDatabase(master.data.db);
    EBA_ASSERT_OK_AND_ASSIGN(
        StreamingAuditor auditor,
        StreamingAuditor::RecoverFrom(&db, "LogStream", opts));
    EBA_ASSERT_OK(auditor.AppendAccessBatch(batch(4)));
  }
  // Generation 2: recovery replays the first WAL and opens a fresh one;
  // another acked batch lands only in that recovery WAL. Die again.
  {
    Database db = CloneDatabase(master.data.db);
    EBA_ASSERT_OK_AND_ASSIGN(
        StreamingAuditor auditor,
        StreamingAuditor::RecoverFrom(&db, "LogStream", opts));
    EBA_ASSERT_OK(auditor.AppendAccessBatch(batch(4)));
  }
  // Generation 3: two WALs to replay. The checkpoint published here must
  // not collide with any surviving recovery WAL; the batch after it is the
  // live tail. Die again.
  {
    Database db = CloneDatabase(master.data.db);
    EBA_ASSERT_OK_AND_ASSIGN(
        StreamingAuditor auditor,
        StreamingAuditor::RecoverFrom(&db, "LogStream", opts));
    EBA_ASSERT_OK(auditor.Checkpoint(/*full=*/false));
    EBA_ASSERT_OK(auditor.AppendAccessBatch(batch(4)));
  }

  // Final recovery: every acknowledged row exactly once — a duplicate from
  // a stale WAL paired with the generation-3 checkpoint shows up here.
  Database db = CloneDatabase(master.data.db);
  RecoveryStats stats;
  EBA_ASSERT_OK_AND_ASSIGN(
      StreamingAuditor recovered,
      StreamingAuditor::RecoverFrom(&db, "LogStream", opts, &stats));
  EXPECT_TRUE(stats.recovered);
  const size_t seeded_rows = UnwrapOrDie(static_cast<const Database&>(
                                             master.data.db)
                                             .GetTable("LogStream"))
                                 ->num_rows();
  const Table* stream =
      UnwrapOrDie(static_cast<const Database&>(db).GetTable("LogStream"));
  EXPECT_EQ(stream->num_rows(), seeded_rows + pos);
  for (const auto& t : master.templates) {
    EBA_ASSERT_OK(recovered.AddTemplate(t));
  }
  (void)UnwrapOrDie(recovered.ExplainNew(SmallStreamingOptions()));
  CheckRecoveredAgainstOracle(db, master.templates, recovered, ~uint64_t{0});
}

// Regression: recovery must fail loudly when a mid-chain WAL file is gone —
// its records were durably committed and acknowledged; replaying around the
// hole would silently lose them. The pre-fix code replayed whatever files
// sorted into order.
TEST(DurabilityTest, RecoveryFailsOnMissingMidChainWalFile) {
  const DurFixture master = MakeDurFixture();
  const std::string dir = TempDir("missing_midchain_wal");
  DurabilityOptions opts;
  opts.dir = dir;
  opts.sync = WalSync::kNone;
  opts.checkpoint_after_wal_bytes = 0;

  size_t pos = 0;
  auto batch = [&](size_t n) {
    std::vector<Row> rows;
    for (; n > 0 && pos < master.backlog.size(); --n) {
      rows.push_back(master.backlog[pos++]);
    }
    return rows;
  };
  // Three kill/recover generations, each acking one batch into its own WAL:
  // the chain is wal-1, wal-2, wal-3 past the generation-1 checkpoint.
  for (int generation = 0; generation < 3; ++generation) {
    Database db = CloneDatabase(master.data.db);
    EBA_ASSERT_OK_AND_ASSIGN(
        StreamingAuditor auditor,
        StreamingAuditor::RecoverFrom(&db, "LogStream", opts));
    EBA_ASSERT_OK(auditor.AppendAccessBatch(batch(4)));
  }

  // Find and delete a mid-chain WAL: the committed middle batch vanishes.
  std::vector<std::string> wal_names;
  for (const std::string& name : UnwrapOrDie(RealEnv()->ListDir(dir))) {
    if (name.rfind("wal-", 0) == 0) wal_names.push_back(name);
  }
  std::sort(wal_names.begin(), wal_names.end());
  ASSERT_GE(wal_names.size(), 3u);
  EBA_ASSERT_OK(RealEnv()->RemoveFile(dir + "/" + wal_names[1]));

  Database db = CloneDatabase(master.data.db);
  const Status recovered =
      StreamingAuditor::RecoverFrom(&db, "LogStream", opts).status();
  ASSERT_FALSE(recovered.ok())
      << "recovery replayed around a missing mid-chain WAL";
  EXPECT_NE(recovered.message().find("WAL chain broken"), std::string::npos)
      << recovered.ToString();
}

}  // namespace
}  // namespace eba
