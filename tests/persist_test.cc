// Tests for whole-database persistence: manifest + CSV round-trips
// preserving schemas, rows, domains, and join metadata.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "careweb/generator.h"
#include "storage/persist.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::BuildPaperToyDatabase;
using testing_util::UnwrapOrDie;

std::string TempDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

void ExpectTablesEqual(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows()) << a.name();
  ASSERT_EQ(a.num_columns(), b.num_columns()) << a.name();
  for (size_t c = 0; c < a.num_columns(); ++c) {
    const ColumnDef& da = a.schema().column(c);
    const ColumnDef& db_ = b.schema().column(c);
    EXPECT_EQ(da.name, db_.name);
    EXPECT_EQ(da.type, db_.type);
    EXPECT_EQ(da.domain, db_.domain);
    EXPECT_EQ(da.is_primary_key, db_.is_primary_key);
  }
  for (size_t r = 0; r < a.num_rows(); ++r) {
    ASSERT_EQ(a.GetRow(r), b.GetRow(r)) << a.name() << " row " << r;
  }
}

TEST(PersistTest, ToyDatabaseRoundTrip) {
  Database db = BuildPaperToyDatabase();
  EBA_ASSERT_OK(db.AddAdminRelationship(AttrId{"Appointments", "Date"},
                                        AttrId{"Log", "Date"}));
  std::string dir = TempDir("eba_persist_toy");
  EBA_ASSERT_OK(SaveDatabase(db, dir));

  Database loaded = UnwrapOrDie(LoadDatabase(dir));
  EXPECT_EQ(loaded.TableNames(), db.TableNames());
  for (const std::string& name : db.TableNames()) {
    ExpectTablesEqual(*UnwrapOrDie(db.GetTable(name)),
                      *UnwrapOrDie(loaded.GetTable(name)));
  }
  EXPECT_TRUE(loaded.IsSelfJoinAllowed(AttrId{"Doctor_Info", "Department"}));
  ASSERT_EQ(loaded.admin_relationships().size(), 1u);
  EXPECT_EQ(loaded.admin_relationships()[0].a,
            (AttrId{"Appointments", "Date"}));
  std::filesystem::remove_all(dir);
}

TEST(PersistTest, CareWebRoundTripPreservesMetadata) {
  CareWebData data = UnwrapOrDie(GenerateCareWeb(CareWebConfig::Tiny()));
  std::string dir = TempDir("eba_persist_careweb");
  EBA_ASSERT_OK(SaveDatabase(data.db, dir));
  Database loaded = UnwrapOrDie(LoadDatabase(dir));

  EXPECT_TRUE(loaded.IsMappingTable("UserMap"));
  EXPECT_TRUE(loaded.IsSelfJoinAllowed(AttrId{"Users", "Department"}));
  EXPECT_EQ(loaded.TableNames(), data.db.TableNames());
  // Spot-check a large table fully and key dimension tables.
  ExpectTablesEqual(*UnwrapOrDie(data.db.GetTable("Log")),
                    *UnwrapOrDie(loaded.GetTable("Log")));
  ExpectTablesEqual(*UnwrapOrDie(data.db.GetTable("Users")),
                    *UnwrapOrDie(loaded.GetTable("Users")));
  std::filesystem::remove_all(dir);
}

TEST(PersistTest, ForeignKeysRoundTrip) {
  Database db;
  EBA_ASSERT_OK(db.CreateTable(TableSchema(
      "Parent", {ColumnDef{"id", DataType::kInt64, "d", true}})));
  EBA_ASSERT_OK(db.CreateTable(TableSchema(
      "Child", {ColumnDef{"ref", DataType::kInt64, "d", false}})));
  EBA_ASSERT_OK(db.AddForeignKey(AttrId{"Child", "ref"}, AttrId{"Parent", "id"}));
  std::string dir = TempDir("eba_persist_fk");
  EBA_ASSERT_OK(SaveDatabase(db, dir));
  Database loaded = UnwrapOrDie(LoadDatabase(dir));
  ASSERT_EQ(loaded.foreign_keys().size(), 1u);
  EXPECT_EQ(loaded.foreign_keys()[0].from, (AttrId{"Child", "ref"}));
  EXPECT_EQ(loaded.foreign_keys()[0].to, (AttrId{"Parent", "id"}));
  std::filesystem::remove_all(dir);
}

TEST(PersistTest, LoadErrors) {
  EXPECT_TRUE(LoadDatabase("/nonexistent/dir").status().IsNotFound());

  // Manifest referencing a missing CSV.
  std::string dir = TempDir("eba_persist_bad");
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir + "/manifest.txt");
    out << "# eba database manifest v1\n"
        << "TABLE Ghost\nCOLUMN id int64 domain=d pk\nEND\n";
  }
  EXPECT_FALSE(LoadDatabase(dir).ok());

  // Unknown directive.
  {
    std::ofstream out(dir + "/manifest.txt");
    out << "# eba database manifest v1\nBOGUS x\n";
  }
  EXPECT_FALSE(LoadDatabase(dir).ok());

  // Missing header.
  {
    std::ofstream out(dir + "/manifest.txt");
    out << "MAPPING X\n";
  }
  EXPECT_FALSE(LoadDatabase(dir).ok());
  std::filesystem::remove_all(dir);
}

/// Writes a one-table (T: id int64, name string) directory with the given
/// manifest body + CSV contents.
std::string WriteOneTableDir(const std::string& name,
                             const std::string& manifest,
                             const std::string& csv) {
  const std::string dir = TempDir(name);
  std::filesystem::create_directories(dir);
  std::ofstream(dir + "/manifest.txt") << manifest;
  std::ofstream(dir + "/T.csv") << csv;
  return dir;
}

TEST(PersistTest, LoadRejectsDuplicateTable) {
  const std::string dir = WriteOneTableDir(
      "eba_persist_dup_table",
      "# eba database manifest v1\n"
      "TABLE T\nCOLUMN id int64 domain=d pk\nEND\n"
      "TABLE T\nCOLUMN id int64 domain=d pk\nEND\n",
      "id\n1\n");
  const Status s = LoadDatabase(dir).status();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("duplicate TABLE 'T'"), std::string::npos)
      << s.ToString();
  std::filesystem::remove_all(dir);
}

TEST(PersistTest, LoadRejectsDuplicateColumn) {
  const std::string dir = WriteOneTableDir(
      "eba_persist_dup_col",
      "# eba database manifest v1\n"
      "TABLE T\nCOLUMN id int64 domain=d pk\nCOLUMN id int64\nEND\n",
      "id,id\n1,2\n");
  const Status s = LoadDatabase(dir).status();
  ASSERT_FALSE(s.ok());
  // The error must name the table and the offending column, not crash.
  EXPECT_NE(s.message().find("table 'T'"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("duplicate column 'id'"), std::string::npos)
      << s.ToString();
  std::filesystem::remove_all(dir);
}

TEST(PersistTest, LoadRejectsTruncatedCsvRow) {
  const std::string dir = WriteOneTableDir(
      "eba_persist_truncated",
      "# eba database manifest v1\n"
      "TABLE T\nCOLUMN id int64 domain=d pk\nCOLUMN name string\nEND\n",
      "id,name\n1,alice\n2\n");  // row 2 lost its name field
  const Status s = LoadDatabase(dir).status();
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("truncated row?"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.message().find("line 3"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("table 'T'"), std::string::npos) << s.ToString();
  std::filesystem::remove_all(dir);
}

TEST(PersistTest, LoadRejectsGarbageNumericField) {
  const std::string dir = WriteOneTableDir(
      "eba_persist_garbage",
      "# eba database manifest v1\n"
      "TABLE T\nCOLUMN id int64 domain=d pk\nCOLUMN name string\nEND\n",
      "id,name\n1,alice\nnot_a_number,bob\n");
  const Status s = LoadDatabase(dir).status();
  ASSERT_FALSE(s.ok());
  // The role-naming contract: table, column, and line of the bad value.
  EXPECT_NE(s.message().find("table 'T'"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("'id'"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("line 3"), std::string::npos) << s.ToString();
  std::filesystem::remove_all(dir);
}

TEST(PersistTest, LoadRejectsWrongCsvHeader) {
  const std::string dir = WriteOneTableDir(
      "eba_persist_header",
      "# eba database manifest v1\n"
      "TABLE T\nCOLUMN id int64 domain=d pk\nCOLUMN name string\nEND\n",
      "id\n1\n");  // header arity disagrees with the schema
  EXPECT_FALSE(LoadDatabase(dir).ok());
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace eba
