// Unit tests for src/query: expressions, path queries, the executor (against
// the paper's Figure 3 worked example), the cardinality estimator, SQL
// rendering, and the template parser.

#include <gtest/gtest.h>

#include "query/executor.h"
#include "query/optimizer.h"
#include "query/parser.h"
#include "query/sql.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::BuildPaperToyDatabase;
using testing_util::kAlice;
using testing_util::kBob;
using testing_util::kDave;
using testing_util::kMike;
using testing_util::UnwrapOrDie;

// --------------------------- Expr ---------------------------

TEST(ExprTest, CmpOpStrings) {
  EXPECT_STREQ(CmpOpToString(CmpOp::kLt), "<");
  EXPECT_STREQ(CmpOpToString(CmpOp::kLe), "<=");
  EXPECT_STREQ(CmpOpToString(CmpOp::kEq), "=");
  EXPECT_STREQ(CmpOpToString(CmpOp::kGe), ">=");
  EXPECT_STREQ(CmpOpToString(CmpOp::kGt), ">");
}

TEST(ExprTest, EvalCmpSemantics) {
  EXPECT_TRUE(EvalCmp(Value::Int64(1), CmpOp::kLt, Value::Int64(2)));
  EXPECT_TRUE(EvalCmp(Value::Int64(2), CmpOp::kEq, Value::Int64(2)));
  EXPECT_FALSE(EvalCmp(Value::Int64(2), CmpOp::kGt, Value::Int64(2)));
  EXPECT_TRUE(EvalCmp(Value::String("b"), CmpOp::kGe, Value::String("a")));
  // NULL never compares true (SQL semantics).
  EXPECT_FALSE(EvalCmp(Value::Null(), CmpOp::kEq, Value::Null()));
  EXPECT_FALSE(EvalCmp(Value::Int64(1), CmpOp::kLt, Value::Null()));
}

// --------------------------- Parser + PathQuery ---------------------------

TEST(ParserTest, ParsesTemplateA) {
  Database db = BuildPaperToyDatabase();
  PathQuery q = UnwrapOrDie(ParsePathQuery(
      db, "Log L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User"));
  EXPECT_EQ(q.vars.size(), 2u);
  EXPECT_EQ(q.vars[0].table, "Log");
  EXPECT_EQ(q.vars[0].alias, "L");
  EXPECT_EQ(q.join_chain.size(), 2u);
  EXPECT_TRUE(q.extra_conditions.empty());
  EXPECT_TRUE(q.const_conditions.empty());
  EXPECT_TRUE(q.Validate(db).ok());
}

TEST(ParserTest, ClassifiesDecorations) {
  Database db = BuildPaperToyDatabase();
  PathQuery q = UnwrapOrDie(ParsePathQuery(
      db, "Log L, Log L2",
      "L.Patient = L2.Patient AND L2.User = L.User AND L.Date > L2.Date"));
  EXPECT_EQ(q.join_chain.size(), 2u);        // the equalities
  EXPECT_EQ(q.extra_conditions.size(), 1u);  // the temporal decoration
  EXPECT_EQ(q.extra_conditions[0].op, CmpOp::kGt);
}

TEST(ParserTest, ParsesLiterals) {
  Database db = BuildPaperToyDatabase();
  PathQuery q = UnwrapOrDie(ParsePathQuery(
      db, "Log L, Doctor_Info I",
      "L.User = I.Doctor AND I.Department = 'Pediatrics' AND L.Lid >= 1"));
  ASSERT_EQ(q.const_conditions.size(), 2u);
  EXPECT_EQ(q.const_conditions[0].rhs, Value::String("Pediatrics"));
  EXPECT_EQ(q.const_conditions[1].rhs, Value::Int64(1));
  EXPECT_EQ(q.const_conditions[1].op, CmpOp::kGe);
}

TEST(ParserTest, ErrorsOnBadInput) {
  Database db = BuildPaperToyDatabase();
  EXPECT_FALSE(ParsePathQuery(db, "Nope N", "").ok());
  EXPECT_FALSE(ParsePathQuery(db, "Log L", "L.Nope = 1").ok());
  EXPECT_FALSE(ParsePathQuery(db, "Log L", "L.Lid").ok());  // no operator
  EXPECT_FALSE(ParsePathQuery(db, "Log L", "1 = L.Lid").ok());  // lhs literal
  EXPECT_FALSE(ParsePathQuery(db, "Log L L2 L3", "").ok());
  EXPECT_FALSE(
      ParsePathQuery(db, "Log L, Log L", "L.Lid = L.Lid").ok());  // dup alias
}

TEST(ParserTest, AliasDefaultsToTableName) {
  Database db = BuildPaperToyDatabase();
  PathQuery q = UnwrapOrDie(
      ParsePathQuery(db, "Log", "Log.Patient = Log.User"));
  EXPECT_EQ(q.vars[0].alias, "Log");
}

TEST(PathQueryTest, ResolveAndAttrName) {
  Database db = BuildPaperToyDatabase();
  PathQuery q = UnwrapOrDie(ParsePathQuery(
      db, "Log L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User"));
  QAttr attr = UnwrapOrDie(q.Resolve(db, "A", "Doctor"));
  EXPECT_EQ(attr.var, 1);
  EXPECT_EQ(UnwrapOrDie(q.AttrName(db, attr)), "A.Doctor");
  EXPECT_FALSE(q.Resolve(db, "Z", "Doctor").ok());
}

TEST(PathQueryTest, ReferencedAttrsDeduplicated) {
  Database db = BuildPaperToyDatabase();
  PathQuery q = UnwrapOrDie(ParsePathQuery(
      db, "Log L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User"));
  EXPECT_EQ(q.ReferencedAttrs().size(), 4u);
}

// --------------------------- Executor: Figure 3 ---------------------------

class Figure3Test : public ::testing::Test {
 protected:
  Figure3Test() : db_(BuildPaperToyDatabase()), executor_(&db_) {}

  PathQuery TemplateA() {
    return UnwrapOrDie(ParsePathQuery(
        db_, "Log L, Appointments A",
        "L.Patient = A.Patient AND A.Doctor = L.User"));
  }
  PathQuery TemplateB() {
    return UnwrapOrDie(ParsePathQuery(
        db_,
        "Log L, Appointments A, Doctor_Info I1, Doctor_Info I2",
        "L.Patient = A.Patient AND A.Doctor = I1.Doctor AND "
        "I1.Department = I2.Department AND I2.Doctor = L.User"));
  }
  QAttr Lid() { return QAttr{0, 0}; }

  Database db_;
  Executor executor_;
};

TEST_F(Figure3Test, TemplateASupportIs50Percent) {
  // Example 3.1: template (A) has support 50% (only L1: Dave had an
  // appointment with Alice, not with Bob).
  for (auto strategy : {Executor::SupportStrategy::kNaive,
                        Executor::SupportStrategy::kDedupFrontier}) {
    int64_t support =
        UnwrapOrDie(executor_.CountDistinct(TemplateA(), Lid(), strategy));
    EXPECT_EQ(support, 1);
  }
}

TEST_F(Figure3Test, TemplateBSupportIs100Percent) {
  // Example 3.1: template (B) has support 100% (both accesses explained via
  // the shared Pediatrics department).
  for (auto strategy : {Executor::SupportStrategy::kNaive,
                        Executor::SupportStrategy::kDedupFrontier}) {
    int64_t support =
        UnwrapOrDie(executor_.CountDistinct(TemplateB(), Lid(), strategy));
    EXPECT_EQ(support, 2);
  }
}

TEST_F(Figure3Test, MaterializeTemplateAInstance) {
  PathQuery q = TemplateA();
  q.projection = {UnwrapOrDie(q.Resolve(db_, "L", "Lid")),
                  UnwrapOrDie(q.Resolve(db_, "L", "Patient")),
                  UnwrapOrDie(q.Resolve(db_, "L", "User")),
                  UnwrapOrDie(q.Resolve(db_, "A", "Date"))};
  Relation rel = UnwrapOrDie(executor_.Materialize(q));
  ASSERT_EQ(rel.rows.size(), 1u);
  EXPECT_EQ(rel.rows[0][0], Value::Int64(1));       // Lid L1
  EXPECT_EQ(rel.rows[0][1], Value::Int64(kAlice));  // patient
  EXPECT_EQ(rel.rows[0][2], Value::Int64(kDave));   // user
}

TEST_F(Figure3Test, MaterializeForLogIdsFiltersToOneAccess) {
  Relation rel = UnwrapOrDie(executor_.MaterializeForLogIds(
      TemplateB(), Lid(), {Value::Int64(2)}));
  ASSERT_GE(rel.rows.size(), 1u);
  int lid_idx = rel.AttrIndex(Lid());
  ASSERT_GE(lid_idx, 0);
  for (const auto& row : rel.rows) {
    EXPECT_EQ(row[static_cast<size_t>(lid_idx)], Value::Int64(2));
  }
}

TEST_F(Figure3Test, MultiplicityProducesMultipleInstances) {
  // Add a second appointment of Alice with Dave: template (A) yields two
  // instances for L1 but the support (distinct lids) stays 1.
  Table* appt = db_.GetTable("Appointments").value();
  EBA_ASSERT_OK(appt->AppendRow(
      {Value::Int64(kAlice),
       Value::Timestamp(Date::FromCivil(2010, 1, 15).ToSeconds()),
       Value::Int64(kDave)}));
  Relation rel = UnwrapOrDie(executor_.Materialize(TemplateA()));
  EXPECT_EQ(rel.rows.size(), 2u);
  EXPECT_EQ(UnwrapOrDie(executor_.CountDistinct(
                TemplateA(), Lid(), Executor::SupportStrategy::kNaive)),
            1);
}

TEST_F(Figure3Test, DecoratedRepeatAccessTemplate) {
  // Add a repeat access: Dave accesses Alice again later.
  Table* log = db_.GetTable("Log").value();
  EBA_ASSERT_OK(
      log->AppendRow({Value::Int64(3),
                      Value::Timestamp(
                          Date::FromCivil(2010, 3, 1, 9, 0, 0).ToSeconds()),
                      Value::Int64(kDave), Value::Int64(kAlice),
                      Value::String("viewed record")}));
  PathQuery q = UnwrapOrDie(ParsePathQuery(
      db_, "Log L, Log L2",
      "L.Patient = L2.Patient AND L2.User = L.User AND L.Date > L2.Date"));
  // Only lid 3 has an earlier access by the same user to the same patient.
  auto values = UnwrapOrDie(executor_.DistinctValues(
      q, Lid(), Executor::SupportStrategy::kDedupFrontier));
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], Value::Int64(3));
}

TEST_F(Figure3Test, ConstConditionFilters) {
  PathQuery q = UnwrapOrDie(ParsePathQuery(
      db_, "Log L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User AND L.Lid = 2"));
  EXPECT_EQ(UnwrapOrDie(executor_.CountDistinct(
                q, Lid(), Executor::SupportStrategy::kNaive)),
            0);  // L2 is not explained by template (A)
}

TEST_F(Figure3Test, DisconnectedQueryRejected) {
  PathQuery q;
  q.vars = {TupleVar{"Log", "L"}, TupleVar{"Appointments", "A"},
            TupleVar{"Doctor_Info", "I"}};
  // Only condition: A joins I; L is never connected.
  q.join_chain.push_back(
      VarCondition{UnwrapOrDie(q.Resolve(db_, "A", "Doctor")), CmpOp::kEq,
                   UnwrapOrDie(q.Resolve(db_, "I", "Doctor"))});
  EXPECT_FALSE(executor_.Materialize(q).ok());
}

TEST_F(Figure3Test, NullJoinKeysNeverMatch) {
  Table* appt = db_.GetTable("Appointments").value();
  EBA_ASSERT_OK(appt->AppendRow(
      {Value::Null(), Value::Timestamp(0), Value::Int64(kDave)}));
  // The NULL-patient appointment must not join with anything.
  EXPECT_EQ(UnwrapOrDie(executor_.CountDistinct(
                TemplateA(), Lid(), Executor::SupportStrategy::kNaive)),
            1);
}

TEST_F(Figure3Test, StatsTrackIntermediateSizes) {
  (void)UnwrapOrDie(executor_.CountDistinct(
      TemplateB(), Lid(), Executor::SupportStrategy::kNaive));
  EXPECT_EQ(executor_.last_stats().joins_executed, 3u);
  EXPECT_GT(executor_.last_stats().peak_intermediate, 0u);
}

// --------------------------- Estimator ---------------------------

TEST_F(Figure3Test, EstimatorBoundedByLogSize) {
  double est = UnwrapOrDie(
      CardinalityEstimator(&db_).EstimateDistinctLogIds(TemplateA(), Lid()));
  EXPECT_GE(est, 0.0);
  EXPECT_LE(est, 2.0);  // |Log| = 2
}

TEST_F(Figure3Test, EstimatorMonotoneInConditions) {
  CardinalityEstimator est(&db_);
  PathQuery partial = UnwrapOrDie(
      ParsePathQuery(db_, "Log L, Appointments A", "L.Patient = A.Patient"));
  double rows_partial = UnwrapOrDie(est.EstimateRows(partial));
  double rows_full = UnwrapOrDie(est.EstimateRows(TemplateA()));
  EXPECT_LE(rows_full, rows_partial + 1e-9);
}

// --------------------------- SQL rendering ---------------------------

TEST_F(Figure3Test, SqlRenderingBasic) {
  std::string sql = UnwrapOrDie(ToSql(db_, TemplateA()));
  EXPECT_NE(sql.find("FROM Log L, Appointments A"), std::string::npos);
  EXPECT_NE(sql.find("L.Patient = A.Patient"), std::string::npos);
  EXPECT_NE(sql.find("A.Doctor = L.User"), std::string::npos);
}

TEST_F(Figure3Test, SqlRenderingCountDistinct) {
  SqlRenderOptions opts;
  opts.count_distinct_lid = true;
  opts.lid_attr = Lid();
  std::string sql = UnwrapOrDie(ToSql(db_, TemplateA(), opts));
  EXPECT_NE(sql.find("SELECT COUNT(DISTINCT L.Lid)"), std::string::npos);
}

TEST_F(Figure3Test, SqlRenderingDedupSubqueries) {
  SqlRenderOptions opts;
  opts.count_distinct_lid = true;
  opts.lid_attr = Lid();
  opts.dedup_subqueries = true;
  std::string sql = UnwrapOrDie(ToSql(db_, TemplateA(), opts));
  // The §3.2.1 rewrite: (SELECT DISTINCT Doctor, Patient FROM Appointments).
  EXPECT_NE(sql.find("SELECT DISTINCT"), std::string::npos);
  EXPECT_NE(sql.find("FROM Appointments)"), std::string::npos);
}

TEST_F(Figure3Test, SqlRenderingLiterals) {
  PathQuery q = UnwrapOrDie(ParsePathQuery(
      db_, "Log L, Doctor_Info I",
      "L.User = I.Doctor AND I.Department = 'Pediatrics'"));
  std::string sql = UnwrapOrDie(ToSql(db_, q));
  EXPECT_NE(sql.find("I.Department = 'Pediatrics'"), std::string::npos);
}

}  // namespace
}  // namespace eba
