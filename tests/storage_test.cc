// Unit tests for src/storage: schemas, columns, tables, indexes, statistics
// and the database catalog.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/chunk.h"
#include "storage/database.h"
#include "storage/index.h"
#include "storage/statistics.h"
#include "storage/table.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::UnwrapOrDie;

TableSchema SimpleSchema() {
  return TableSchema("T", {ColumnDef{"id", DataType::kInt64, "id", true},
                           ColumnDef{"name", DataType::kString, "", false},
                           ColumnDef{"score", DataType::kDouble, "", false}});
}

// --------------------------- Schema ---------------------------

TEST(SchemaTest, ColumnLookup) {
  TableSchema s = SimpleSchema();
  EXPECT_EQ(s.ColumnIndex("id"), 0);
  EXPECT_EQ(s.ColumnIndex("score"), 2);
  EXPECT_EQ(s.ColumnIndex("missing"), -1);
  EXPECT_TRUE(s.HasColumn("name"));
  EXPECT_EQ(s.PrimaryKeyIndex(), 0);
}

TEST(SchemaTest, ColumnsInDomain) {
  TableSchema s("E", {ColumnDef{"a", DataType::kInt64, "user", false},
                      ColumnDef{"b", DataType::kInt64, "user", false},
                      ColumnDef{"c", DataType::kInt64, "patient", false}});
  EXPECT_EQ(s.ColumnsInDomain("user").size(), 2u);
  EXPECT_EQ(s.ColumnsInDomain("patient").size(), 1u);
  EXPECT_TRUE(s.ColumnsInDomain("").empty());
}

TEST(SchemaTest, ValidationCatchesErrors) {
  EXPECT_FALSE(TableSchema("", {ColumnDef{"a", DataType::kInt64, "", false}})
                   .Validate()
                   .ok());
  EXPECT_FALSE(TableSchema("T", {}).Validate().ok());
  EXPECT_FALSE(TableSchema("T", {ColumnDef{"a", DataType::kInt64, "", false},
                                 ColumnDef{"a", DataType::kInt64, "", false}})
                   .Validate()
                   .ok());
  // Primary key without a domain.
  EXPECT_FALSE(
      TableSchema("T", {ColumnDef{"a", DataType::kInt64, "", true}})
          .Validate()
          .ok());
  // Two primary keys.
  EXPECT_FALSE(TableSchema("T", {ColumnDef{"a", DataType::kInt64, "d", true},
                                 ColumnDef{"b", DataType::kInt64, "d", true}})
                   .Validate()
                   .ok());
  EXPECT_TRUE(SimpleSchema().Validate().ok());
}

TEST(AttrIdTest, EqualityAndOrdering) {
  AttrId a{"Log", "User"};
  AttrId b{"Log", "User"};
  AttrId c{"Log", "Patient"};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(c, a);  // Patient < User
  EXPECT_EQ(a.ToString(), "Log.User");
}

// --------------------------- Column ---------------------------

TEST(ColumnTest, IntAppendAndGet) {
  Column col(DataType::kInt64);
  col.AppendInt64(5);
  col.AppendInt64(-3);
  EXPECT_EQ(col.size(), 2u);
  EXPECT_EQ(col.Get(0), Value::Int64(5));
  EXPECT_EQ(col.Int64At(1), -3);
  EXPECT_TRUE(col.IsIntLike());
}

TEST(ColumnTest, StringDictionaryEncoding) {
  Column col(DataType::kString);
  col.AppendString("alpha");
  col.AppendString("beta");
  col.AppendString("alpha");
  EXPECT_EQ(col.size(), 3u);
  EXPECT_EQ(col.DictionarySize(), 2u);
  EXPECT_EQ(col.StringCodeAt(0), col.StringCodeAt(2));
  EXPECT_NE(col.StringCodeAt(0), col.StringCodeAt(1));
  EXPECT_EQ(col.StringAt(2), "alpha");
  EXPECT_EQ(*col.FindStringCode("beta"), col.StringCodeAt(1));
  EXPECT_FALSE(col.FindStringCode("gamma").has_value());
}

TEST(ColumnTest, NullHandling) {
  Column col(DataType::kInt64);
  col.AppendInt64(1);
  col.AppendNull();
  col.AppendInt64(3);
  EXPECT_EQ(col.NullCount(), 1u);
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_TRUE(col.Get(1).is_null());
  EXPECT_EQ(col.Get(2), Value::Int64(3));
}

TEST(ColumnTest, AppendValueTypeChecked) {
  Column col(DataType::kInt64);
  EXPECT_TRUE(col.Append(Value::Int64(1)).ok());
  EXPECT_TRUE(col.Append(Value::Null()).ok());
  EXPECT_FALSE(col.Append(Value::String("x")).ok());
  EXPECT_THROW(col.AppendString("x"), CheckFailure);
}

// --------------------------- Index ---------------------------

TEST(IndexTest, IntLookup) {
  Column col(DataType::kInt64);
  for (int64_t v : {7, 8, 7, 9, 7}) col.AppendInt64(v);
  HashIndex idx(&col);
  EXPECT_EQ(idx.NumDistinctKeys(), 3u);
  EXPECT_EQ(idx.LookupInt64(7).size(), 3u);
  EXPECT_EQ(idx.Lookup(Value::Int64(9), col.size()).size(), 1u);
  EXPECT_TRUE(idx.Lookup(Value::Int64(100), col.size()).empty());
  EXPECT_TRUE(idx.Lookup(Value::Null(), col.size()).empty());
  EXPECT_TRUE(idx.Lookup(Value::String("7"), col.size()).empty());  // wrong type
}

TEST(IndexTest, StringLookupThroughDictionary) {
  Column col(DataType::kString);
  for (const char* v : {"a", "b", "a"}) col.AppendString(v);
  HashIndex idx(&col);
  EXPECT_EQ(idx.Lookup(Value::String("a"), col.size()).size(), 2u);
  EXPECT_TRUE(idx.Lookup(Value::String("zzz"), col.size()).empty());
}

TEST(IndexTest, NullsNotIndexed) {
  Column col(DataType::kInt64);
  col.AppendInt64(1);
  col.AppendNull();
  HashIndex idx(&col);
  EXPECT_EQ(idx.NumDistinctKeys(), 1u);
}

TEST(IndexTest, DoubleColumnFallback) {
  Column col(DataType::kDouble);
  col.AppendDouble(1.5);
  col.AppendDouble(1.5);
  col.AppendDouble(2.5);
  HashIndex idx(&col);
  EXPECT_EQ(idx.Lookup(Value::Double(1.5), col.size()).size(), 2u);
  EXPECT_EQ(idx.NumDistinctKeys(), 2u);
}

// --------------------------- Statistics ---------------------------

TEST(StatisticsTest, IntStats) {
  Column col(DataType::kInt64);
  for (int64_t v : {5, 1, 5, 9}) col.AppendInt64(v);
  col.AppendNull();
  ColumnStats stats = ComputeColumnStats(col);
  EXPECT_EQ(stats.num_rows, 5u);
  EXPECT_EQ(stats.num_nulls, 1u);
  EXPECT_EQ(stats.num_distinct, 3u);
  EXPECT_EQ(stats.min, Value::Int64(1));
  EXPECT_EQ(stats.max, Value::Int64(9));
  EXPECT_DOUBLE_EQ(stats.AvgMultiplicity(), 4.0 / 3.0);
}

TEST(StatisticsTest, StringStatsUseDictionary) {
  Column col(DataType::kString);
  for (const char* v : {"m", "a", "z", "a"}) col.AppendString(v);
  ColumnStats stats = ComputeColumnStats(col);
  EXPECT_EQ(stats.num_distinct, 3u);
  EXPECT_EQ(stats.min, Value::String("a"));
  EXPECT_EQ(stats.max, Value::String("z"));
}

TEST(StatisticsTest, EmptyColumn) {
  Column col(DataType::kInt64);
  ColumnStats stats = ComputeColumnStats(col);
  EXPECT_EQ(stats.num_rows, 0u);
  EXPECT_EQ(stats.num_distinct, 0u);
  EXPECT_EQ(stats.AvgMultiplicity(), 0.0);
}

// --------------------------- Table ---------------------------

TEST(TableTest, AppendAndGet) {
  Table t(SimpleSchema());
  EBA_ASSERT_OK(t.AppendRow(
      {Value::Int64(1), Value::String("x"), Value::Double(0.5)}));
  EBA_ASSERT_OK(t.AppendRow(
      {Value::Int64(2), Value::String("y"), Value::Null()}));
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.Get(0, 1), Value::String("x"));
  EXPECT_TRUE(t.Get(1, 2).is_null());
  Row row = t.GetRow(1);
  EXPECT_EQ(row[0], Value::Int64(2));
}

TEST(TableTest, AppendValidation) {
  Table t(SimpleSchema());
  EXPECT_FALSE(t.AppendRow({Value::Int64(1)}).ok());  // wrong arity
  EXPECT_FALSE(
      t.AppendRow({Value::String("not an int"), Value::String("x"),
                   Value::Double(1)})
          .ok());
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST(TableTest, IndexAndStatsExtendPastAppendWatermark) {
  Table t(SimpleSchema());
  EBA_ASSERT_OK(t.AppendRow(
      {Value::Int64(1), Value::String("x"), Value::Double(0.5)}));
  const HashIndex& idx1 = t.GetOrBuildIndex(0);
  EXPECT_EQ(idx1.LookupInt64(1).size(), 1u);
  EXPECT_EQ(t.GetOrComputeStats(0).num_distinct, 1u);

  EBA_ASSERT_OK(t.AppendRow(
      {Value::Int64(1), Value::String("y"), Value::Double(1.5)}));
  const HashIndex& idx2 = t.GetOrBuildIndex(0);
  // Appends extend the cached index in place: same object, new rows
  // visible — pointers held by compiled plans stay valid.
  EXPECT_EQ(&idx1, &idx2);
  EXPECT_EQ(idx2.LookupInt64(1).size(), 2u);
  EXPECT_EQ(t.GetOrComputeStats(1).num_distinct, 2u);
}

TEST(TableTest, AppendMovesWatermarkNotStructuralEpoch) {
  Table t(SimpleSchema());
  const uint64_t epoch0 = t.structural_epoch();
  EBA_ASSERT_OK(t.AppendRow(
      {Value::Int64(1), Value::String("x"), Value::Double(0.5)}));
  EXPECT_EQ(t.structural_epoch(), epoch0);
  EXPECT_EQ(t.append_watermark(), 1u);

  // A mutable access may rewrite cells in place: structural epoch moves and
  // cached derived state is dropped.
  const HashIndex& idx1 = t.GetOrBuildIndex(0);
  EXPECT_EQ(idx1.indexed_rows(), 1u);
  t.mutable_column(0);
  EXPECT_EQ(t.structural_epoch(), epoch0 + 1);
  EXPECT_EQ(t.append_watermark(), 1u);
  const HashIndex& idx2 = t.GetOrBuildIndex(0);
  EXPECT_EQ(idx2.LookupInt64(1).size(), 1u);  // rebuilt from scratch
}

TEST(IndexTest, ExtendToFoldsOnlyTheSuffix) {
  Column c(DataType::kString);
  c.AppendString("a");
  c.AppendString("b");
  HashIndex index(&c);
  EXPECT_EQ(index.indexed_rows(), 2u);
  EXPECT_EQ(index.NumDistinctKeys(), 2u);

  // New rows mint a new dictionary code and revisit an old one; ExtendTo
  // must index both without disturbing the prefix postings.
  c.AppendString("c");
  c.AppendString("a");
  c.AppendNull();
  index.ExtendTo(c.size());
  EXPECT_EQ(index.indexed_rows(), 5u);
  EXPECT_EQ(index.NumDistinctKeys(), 3u);
  EXPECT_EQ(index.Lookup(Value::String("a"), c.size()),
            (std::vector<uint32_t>{0, 3}));
  EXPECT_EQ(index.Lookup(Value::String("c"), c.size()),
            (std::vector<uint32_t>{2}));
  index.ExtendTo(c.size());  // idempotent
  EXPECT_EQ(index.Lookup(Value::String("a"), c.size()),
            (std::vector<uint32_t>{0, 3}));
}

TEST(StatisticsTest, IncrementalExtensionMatchesRecompute) {
  Column c(DataType::kInt64);
  IncrementalColumnStats incremental;
  for (int64_t v : {5, 3, 9, 3}) c.AppendInt64(v);
  incremental.ExtendTo(c);
  EXPECT_EQ(incremental.stats().num_distinct, 3u);

  c.AppendInt64(1);
  c.AppendNull();
  c.AppendInt64(12);
  incremental.ExtendTo(c);
  const ColumnStats& ext = incremental.stats();
  const ColumnStats full = ComputeColumnStats(c);
  EXPECT_EQ(ext.num_rows, full.num_rows);
  EXPECT_EQ(ext.num_nulls, full.num_nulls);
  EXPECT_EQ(ext.num_distinct, full.num_distinct);
  EXPECT_EQ(ext.min, full.min);
  EXPECT_EQ(ext.max, full.max);
  EXPECT_EQ(ext.min, Value::Int64(1));
  EXPECT_EQ(ext.max, Value::Int64(12));
}

TEST(TableTest, ColumnByName) {
  Table t(SimpleSchema());
  EXPECT_TRUE(t.ColumnByName("name").ok());
  EXPECT_TRUE(t.ColumnByName("nope").status().IsNotFound());
}

TEST(TableTest, CsvRoundTrip) {
  Table t(SimpleSchema());
  EBA_ASSERT_OK(t.AppendRow(
      {Value::Int64(1), Value::String("a,b"), Value::Double(0.25)}));
  EBA_ASSERT_OK(
      t.AppendRow({Value::Int64(2), Value::Null(), Value::Double(1)}));
  std::string path = ::testing::TempDir() + "/eba_table_test.csv";
  EBA_ASSERT_OK(t.WriteCsv(path));
  Table loaded = UnwrapOrDie(Table::ReadCsv(path, SimpleSchema()));
  ASSERT_EQ(loaded.num_rows(), 2u);
  EXPECT_EQ(loaded.Get(0, 1), Value::String("a,b"));
  EXPECT_TRUE(loaded.Get(1, 1).is_null());
  EXPECT_DOUBLE_EQ(loaded.Get(0, 2).AsDouble(), 0.25);
  std::remove(path.c_str());
}

TEST(TableTest, CsvTimestampRoundTrip) {
  TableSchema schema("TS", {ColumnDef{"t", DataType::kTimestamp, "", false}});
  Table t(schema);
  int64_t when = Date::FromCivil(2010, 4, 28, 14, 29, 8).ToSeconds();
  EBA_ASSERT_OK(t.AppendRow({Value::Timestamp(when)}));
  std::string path = ::testing::TempDir() + "/eba_ts_test.csv";
  EBA_ASSERT_OK(t.WriteCsv(path));
  Table loaded = UnwrapOrDie(Table::ReadCsv(path, schema));
  EXPECT_EQ(loaded.Get(0, 0).AsTimestamp(), when);
  std::remove(path.c_str());
}

// --------------------------- Database ---------------------------

TEST(DatabaseTest, CreateGetDrop) {
  Database db;
  EBA_ASSERT_OK(db.CreateTable(SimpleSchema()));
  EXPECT_TRUE(db.HasTable("T"));
  EXPECT_TRUE(db.CreateTable(SimpleSchema()).IsAlreadyExists());
  EXPECT_TRUE(db.GetTable("T").ok());
  EXPECT_TRUE(db.GetTable("missing").status().IsNotFound());
  EBA_ASSERT_OK(db.DropTable("T"));
  EXPECT_FALSE(db.HasTable("T"));
  EXPECT_TRUE(db.DropTable("T").IsNotFound());
}

TEST(DatabaseTest, ForeignKeyRequiresPrimaryKeyTarget) {
  Database db;
  EBA_ASSERT_OK(db.CreateTable(SimpleSchema()));  // T.id is PK
  EBA_ASSERT_OK(db.CreateTable(TableSchema(
      "Child", {ColumnDef{"ref", DataType::kInt64, "id", false}})));
  EBA_ASSERT_OK(db.AddForeignKey(AttrId{"Child", "ref"}, AttrId{"T", "id"}));
  // Non-PK target rejected.
  EXPECT_FALSE(
      db.AddForeignKey(AttrId{"T", "id"}, AttrId{"Child", "ref"}).ok());
  // Missing attr rejected.
  EXPECT_FALSE(
      db.AddForeignKey(AttrId{"Child", "nope"}, AttrId{"T", "id"}).ok());
  EXPECT_EQ(db.foreign_keys().size(), 1u);
}

TEST(DatabaseTest, SelfJoinAllowance) {
  Database db = testing_util::BuildPaperToyDatabase();
  EXPECT_TRUE(db.IsSelfJoinAllowed(AttrId{"Doctor_Info", "Department"}));
  EXPECT_FALSE(db.IsSelfJoinAllowed(AttrId{"Doctor_Info", "Doctor"}));
  // Idempotent.
  EBA_ASSERT_OK(db.AllowSelfJoin(AttrId{"Doctor_Info", "Department"}));
  EXPECT_EQ(db.self_join_attrs().size(), 1u);
}

TEST(DatabaseTest, AdminRelationshipValidation) {
  Database db = testing_util::BuildPaperToyDatabase();
  EBA_ASSERT_OK(db.AddAdminRelationship(AttrId{"Appointments", "Doctor"},
                                        AttrId{"Doctor_Info", "Doctor"}));
  EXPECT_FALSE(db.AddAdminRelationship(AttrId{"Appointments", "Doctor"},
                                       AttrId{"Appointments", "Doctor"})
                   .ok());
}

TEST(DatabaseTest, MappingTables) {
  Database db = testing_util::BuildPaperToyDatabase();
  EXPECT_FALSE(db.MarkMappingTable("nope").ok());
  EBA_ASSERT_OK(db.MarkMappingTable("Doctor_Info"));
  EXPECT_TRUE(db.IsMappingTable("Doctor_Info"));
  EXPECT_FALSE(db.IsMappingTable("Log"));
}

TEST(DatabaseTest, DropTableCleansMetadata) {
  Database db = testing_util::BuildPaperToyDatabase();
  EBA_ASSERT_OK(db.AddAdminRelationship(AttrId{"Appointments", "Doctor"},
                                        AttrId{"Doctor_Info", "Doctor"}));
  EBA_ASSERT_OK(db.DropTable("Doctor_Info"));
  EXPECT_TRUE(db.admin_relationships().empty());
  EXPECT_TRUE(db.self_join_attrs().empty());
}

TEST(DatabaseTest, ResolveColumnAndTotals) {
  Database db = testing_util::BuildPaperToyDatabase();
  EXPECT_EQ(*db.ResolveColumn(AttrId{"Log", "Patient"}), 3);
  EXPECT_FALSE(db.ResolveColumn(AttrId{"Log", "nope"}).ok());
  EXPECT_EQ(db.TotalRows(), 6u);  // 2 appts + 2 doctors + 2 log rows
  EXPECT_EQ(db.TableNames().size(), 3u);
}

// ------------------ Chunk-boundary properties ------------------
//
// Column payloads live in fixed 64k-row chunks (storage/chunk.h); these
// tests pin every chunk-aware consumer to a monolithic (plain std::vector)
// reference across ranges that start exactly on, end exactly on, and
// straddle chunk boundaries. The mirror vector is the pre-chunking storage
// layout, so agreement here is byte-identical-to-the-old-code evidence.

/// A ~2.02-chunk int64 column plus its monolithic mirror. Values repeat
/// (i % kDistinct) so index buckets span chunks; every 97th row is NULL.
struct ChunkedFixture {
  static constexpr int64_t kDistinct = 1000;
  Column column{DataType::kInt64};
  std::vector<int64_t> values;  // mirror payload (NULL rows hold 0)
  std::vector<bool> nulls;

  explicit ChunkedFixture(size_t n) {
    for (size_t i = 0; i < n; ++i) {
      if (i % 97 == 0) {
        column.AppendNull();
        values.push_back(0);
        nulls.push_back(true);
      } else {
        const int64_t v = static_cast<int64_t>(i) % kDistinct;
        column.AppendInt64(v);
        values.push_back(v);
        nulls.push_back(false);
      }
    }
  }
};

/// Range edges exercising both chunk boundaries of a 2-chunk-plus column:
/// on/off by one around kColumnChunkRows and 2*kColumnChunkRows, plus the
/// extremes. Built as watermark sequences and (begin, end) pairs below.
std::vector<size_t> BoundaryEdges(size_t n) {
  const size_t c = kColumnChunkRows;
  return {0, 1, c - 1, c, c + 1, 2 * c - 1, 2 * c, 2 * c + 1, n};
}

const std::vector<uint32_t> empty_rows;

TEST(ChunkBoundaryTest, ForEachInt64SpanCoversRangesExactly) {
  const size_t n = 2 * kColumnChunkRows + 1234;
  ChunkedFixture fx(n);
  for (size_t begin : BoundaryEdges(n)) {
    for (size_t end : BoundaryEdges(n)) {
      if (end < begin) continue;
      std::vector<int64_t> seen;
      size_t expected_next = begin;
      fx.column.ForEachInt64Span(
          begin, end, [&](size_t first_row, const int64_t* data, size_t count) {
            EXPECT_EQ(first_row, expected_next);
            expected_next = first_row + count;
            seen.insert(seen.end(), data, data + count);
          });
      EXPECT_EQ(expected_next, end);
      ASSERT_EQ(seen.size(), end - begin);
      for (size_t i = 0; i < seen.size(); ++i) {
        EXPECT_EQ(seen[i], fx.values[begin + i]) << "row " << begin + i;
      }
    }
  }
}

TEST(ChunkBoundaryTest, MaterializeRangeMatchesMonolithicGather) {
  const size_t n = 2 * kColumnChunkRows + 1234;
  ChunkedFixture fx(n);
  // Row ids deliberately hop across chunks: stride-heavy permutation
  // covering head, both boundaries, and tail.
  std::vector<uint32_t> row_ids;
  for (size_t i = 0; i < n; i += 1009) {
    row_ids.push_back(static_cast<uint32_t>(i));
    row_ids.push_back(static_cast<uint32_t>(n - 1 - i));
  }
  for (size_t boundary : {kColumnChunkRows, 2 * kColumnChunkRows}) {
    row_ids.push_back(static_cast<uint32_t>(boundary - 1));
    row_ids.push_back(static_cast<uint32_t>(boundary));
  }
  const size_t m = row_ids.size();
  for (size_t begin : std::vector<size_t>{0, 1, m / 3, m - 1, m}) {
    for (size_t end : std::vector<size_t>{begin, m / 2, m}) {
      if (end < begin) continue;
      std::vector<Value> out(m);
      fx.column.MaterializeRange(row_ids, begin, end, out.data());
      for (size_t i = begin; i < end; ++i) {
        const size_t row = row_ids[i];
        const Value expected = fx.nulls[row] ? Value::Null()
                                             : Value::Int64(fx.values[row]);
        EXPECT_TRUE(out[i] == expected) << "slot " << i << " row " << row;
      }
    }
  }
  // MaterializeInto (the full-gather variant) against the same reference.
  std::vector<Value> all;
  fx.column.MaterializeInto(row_ids, &all);
  ASSERT_EQ(all.size(), m);
  for (size_t i = 0; i < m; ++i) {
    const size_t row = row_ids[i];
    const Value expected =
        fx.nulls[row] ? Value::Null() : Value::Int64(fx.values[row]);
    EXPECT_TRUE(all[i] == expected) << "slot " << i;
  }
}

TEST(ChunkBoundaryTest, HashIndexExtendToMatchesMonolithicBuild) {
  const size_t n = 2 * kColumnChunkRows + 1234;
  // Grow a column to each boundary watermark, fold the new suffix into the
  // index at every step (the streaming-append path), and compare lookups
  // against a monolithic reference rebuilt from the mirror prefix.
  ChunkedFixture fx(n);
  Column column(DataType::kInt64);
  std::unique_ptr<HashIndex> index;
  size_t grown = 0;
  for (size_t upto : BoundaryEdges(n)) {
    if (upto == 0) continue;
    while (grown < upto) {
      if (fx.nulls[grown]) {
        column.AppendNull();
      } else {
        column.AppendInt64(fx.values[grown]);
      }
      ++grown;
    }
    if (index == nullptr) {
      index = std::make_unique<HashIndex>(&column);
    } else {
      index->ExtendTo(column.size());
    }
    ASSERT_EQ(index->indexed_rows(), upto);
    std::unordered_map<int64_t, std::vector<uint32_t>> reference;
    for (size_t i = 0; i < upto; ++i) {
      if (!fx.nulls[i]) {
        reference[fx.values[i]].push_back(static_cast<uint32_t>(i));
      }
    }
    for (int64_t key = 0; key < ChunkedFixture::kDistinct; key += 123) {
      const auto it = reference.find(key);
      const std::vector<uint32_t>& expected =
          it == reference.end() ? empty_rows : it->second;
      const RowIdSpan span = index->LookupInt64(key);
      EXPECT_EQ(std::vector<uint32_t>(span.begin(), span.end()), expected)
          << "key " << key;
    }
  }
  EXPECT_EQ(index->indexed_rows(), n);
}

TEST(ChunkBoundaryTest, IncrementalStatsMatchMonolithicFold) {
  const size_t n = 2 * kColumnChunkRows + 1234;
  ChunkedFixture fx(n);
  IncrementalColumnStats incremental;
  for (size_t upto : BoundaryEdges(n)) {
    if (upto == 0) continue;
    // ExtendTo folds [rows_seen, column.size()); emulate partial growth by
    // folding the full column only at the last watermark — intermediate
    // checks use a prefix column grown to each boundary instead.
    Column prefix(DataType::kInt64);
    IncrementalColumnStats prefix_stats;
    size_t grown = 0;
    for (size_t step : BoundaryEdges(n)) {
      if (step > upto || step <= grown) continue;
      while (grown < step) {
        if (fx.nulls[grown]) {
          prefix.AppendNull();
        } else {
          prefix.AppendInt64(fx.values[grown]);
        }
        ++grown;
      }
      prefix_stats.ExtendTo(prefix);  // boundary-straddling increments
    }
    // Monolithic reference over the mirror prefix.
    size_t ref_nulls = 0;
    std::unordered_set<int64_t> ref_distinct;
    int64_t ref_min = 0, ref_max = 0;
    bool any = false;
    for (size_t i = 0; i < upto; ++i) {
      if (fx.nulls[i]) {
        ++ref_nulls;
        continue;
      }
      ref_distinct.insert(fx.values[i]);
      if (!any || fx.values[i] < ref_min) ref_min = fx.values[i];
      if (!any || fx.values[i] > ref_max) ref_max = fx.values[i];
      any = true;
    }
    const ColumnStats& got = prefix_stats.stats();
    EXPECT_EQ(got.num_rows, upto);
    EXPECT_EQ(got.num_nulls, ref_nulls);
    EXPECT_EQ(got.num_distinct, ref_distinct.size());
    if (any) {
      EXPECT_TRUE(got.min == Value::Int64(ref_min)) << "upto " << upto;
      EXPECT_TRUE(got.max == Value::Int64(ref_max)) << "upto " << upto;
    }
  }
  // The one-shot ComputeColumnStats over the chunked column must agree with
  // the incremental fold at full size.
  incremental.ExtendTo(fx.column);
  const ColumnStats one_shot = ComputeColumnStats(fx.column);
  EXPECT_EQ(incremental.stats().num_rows, one_shot.num_rows);
  EXPECT_EQ(incremental.stats().num_nulls, one_shot.num_nulls);
  EXPECT_EQ(incremental.stats().num_distinct, one_shot.num_distinct);
  EXPECT_TRUE(incremental.stats().min == one_shot.min);
  EXPECT_TRUE(incremental.stats().max == one_shot.max);
}

}  // namespace
}  // namespace eba
