// Tests for TemplateCatalog serialization: round-trips, validation against
// the schema, and error handling for malformed catalog files.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/catalog.h"
#include "query/sql.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::BuildPaperToyDatabase;
using testing_util::UnwrapOrDie;

ExplanationTemplate ApptTemplate(const Database& db) {
  return UnwrapOrDie(ExplanationTemplate::Parse(
      db, "appt_with_doctor", "Log L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User",
      "[L.Patient] had an appointment with [L.User] on [A.Date]"));
}

ExplanationTemplate DecoratedTemplate(const Database& db) {
  return UnwrapOrDie(ExplanationTemplate::Parse(
      db, "repeat_access", "Log L, Log L2",
      "L.Patient = L2.Patient AND L2.User = L.User AND L.Date > L2.Date",
      "[L.User] previously accessed [L.Patient]'s record"));
}

ExplanationTemplate LiteralTemplate(const Database& db) {
  return UnwrapOrDie(ExplanationTemplate::Parse(
      db, "pediatrics_only", "Log L, Doctor_Info I",
      "L.User = I.Doctor AND I.Department = 'Pediatrics'",
      "[L.User] works in Pediatrics"));
}

TEST(CatalogTest, AddAndFind) {
  Database db = BuildPaperToyDatabase();
  TemplateCatalog catalog;
  EBA_ASSERT_OK(catalog.Add(ApptTemplate(db)));
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_NE(catalog.Find("appt_with_doctor"), nullptr);
  EXPECT_EQ(catalog.Find("missing"), nullptr);
  EXPECT_TRUE(catalog.Add(ApptTemplate(db)).IsAlreadyExists());
}

TEST(CatalogTest, SerializeDeserializeRoundTrip) {
  Database db = BuildPaperToyDatabase();
  TemplateCatalog catalog;
  EBA_ASSERT_OK(catalog.Add(ApptTemplate(db)));
  EBA_ASSERT_OK(catalog.Add(DecoratedTemplate(db)));
  EBA_ASSERT_OK(catalog.Add(LiteralTemplate(db)));

  std::string text = UnwrapOrDie(catalog.Serialize(db));
  TemplateCatalog loaded = UnwrapOrDie(TemplateCatalog::Deserialize(db, text));
  ASSERT_EQ(loaded.size(), 3u);

  // Same canonical condition sets, names and descriptions.
  for (const auto& original : catalog.templates()) {
    const ExplanationTemplate* restored = loaded.Find(original.name());
    ASSERT_NE(restored, nullptr) << original.name();
    EXPECT_EQ(UnwrapOrDie(restored->CanonicalKey(db)),
              UnwrapOrDie(original.CanonicalKey(db)));
    EXPECT_EQ(restored->description_format(), original.description_format());
    EXPECT_EQ(restored->IsDecorated(), original.IsDecorated());
  }

  // A second round-trip is a fixed point.
  std::string text2 = UnwrapOrDie(loaded.Serialize(db));
  EXPECT_EQ(text, text2);
}

TEST(CatalogTest, RenderClausesRoundTripThroughParser) {
  Database db = BuildPaperToyDatabase();
  ExplanationTemplate tmpl = DecoratedTemplate(db);
  std::string from = UnwrapOrDie(RenderFromClause(db, tmpl.query()));
  std::string where = UnwrapOrDie(RenderWhereClause(db, tmpl.query()));
  ExplanationTemplate reparsed = UnwrapOrDie(
      ExplanationTemplate::Parse(db, "reparsed", from, where, "d"));
  EXPECT_EQ(UnwrapOrDie(reparsed.CanonicalKey(db)),
            UnwrapOrDie(tmpl.CanonicalKey(db)));
}

TEST(CatalogTest, FileRoundTrip) {
  Database db = BuildPaperToyDatabase();
  TemplateCatalog catalog;
  EBA_ASSERT_OK(catalog.Add(ApptTemplate(db)));
  std::string path = ::testing::TempDir() + "/eba_catalog_test.txt";
  EBA_ASSERT_OK(catalog.SaveToFile(db, path));
  TemplateCatalog loaded =
      UnwrapOrDie(TemplateCatalog::LoadFromFile(db, path));
  EXPECT_EQ(loaded.size(), 1u);
  std::remove(path.c_str());
  EXPECT_TRUE(
      TemplateCatalog::LoadFromFile(db, path).status().IsNotFound());
}

TEST(CatalogTest, DeserializeRejectsMalformedInput) {
  Database db = BuildPaperToyDatabase();
  // Missing header.
  EXPECT_FALSE(TemplateCatalog::Deserialize(
                   db, "TEMPLATE t\nFROM Log L\nWHERE \nDESC d\nEND\n")
                   .ok());
  // Content outside a block.
  EXPECT_FALSE(TemplateCatalog::Deserialize(
                   db, "# eba template catalog v1\nFROM Log L\n")
                   .ok());
  // Unterminated block.
  EXPECT_FALSE(TemplateCatalog::Deserialize(
                   db, "# eba template catalog v1\nTEMPLATE t\nFROM Log L\n")
                   .ok());
  // Unknown table fails schema validation.
  EXPECT_FALSE(
      TemplateCatalog::Deserialize(
          db,
          "# eba template catalog v1\nTEMPLATE t\nFROM Nope N\nWHERE "
          "N.x = N.y\nDESC d\nEND\n")
          .ok());
  // Duplicate names rejected.
  std::string dup =
      "# eba template catalog v1\n"
      "TEMPLATE t\nFROM Log L, Appointments A\n"
      "WHERE L.Patient = A.Patient\nDESC d\nEND\n"
      "TEMPLATE t\nFROM Log L, Appointments A\n"
      "WHERE L.Patient = A.Patient\nDESC d\nEND\n";
  EXPECT_TRUE(
      TemplateCatalog::Deserialize(db, dup).status().IsAlreadyExists());
}

TEST(CatalogTest, DeserializeToleratesCommentsAndBlankLines) {
  Database db = BuildPaperToyDatabase();
  std::string text =
      "# eba template catalog v1\n"
      "\n"
      "# the appointment template\n"
      "TEMPLATE appt\n"
      "FROM Log L, Appointments A\n"
      "WHERE L.Patient = A.Patient AND A.Doctor = L.User\n"
      "DESC [L.Patient] saw [L.User]\n"
      "END\n";
  TemplateCatalog catalog =
      UnwrapOrDie(TemplateCatalog::Deserialize(db, text));
  EXPECT_EQ(catalog.size(), 1u);
}

}  // namespace
}  // namespace eba
