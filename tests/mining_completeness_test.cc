// Mining completeness/soundness: a brute-force enumerator walks EVERY
// restricted simple explanation path (no pruning) and computes exact
// support; the miner must return exactly the paths meeting the threshold —
// regardless of algorithm or optimization configuration. This is the
// strongest correctness property behind §5.3.3's "each algorithm produced
// the same set of explanation templates".

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "core/miner.h"
#include "graph/schema_graph.h"
#include "query/executor.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::BuildPaperToyDatabase;
using testing_util::UnwrapOrDie;

/// Enumerates all restricted-simple explanation paths by unpruned DFS and
/// returns canonical keys of those with support >= threshold.
std::set<std::string> BruteForceSupported(const Database& db,
                                          const PathRules& rules,
                                          const std::string& lid_column,
                                          double threshold) {
  SchemaGraph graph = UnwrapOrDie(SchemaGraph::Build(db));
  Executor executor(&db);
  const Table* log_table = UnwrapOrDie(db.GetTable(rules.start.table));
  QAttr lid{0, log_table->schema().ColumnIndex(lid_column)};
  EBA_CHECK(lid.col >= 0);

  std::set<std::string> supported;
  std::vector<MiningPath> stack;
  for (const auto& e : graph.EdgesFrom(rules.start)) {
    MiningPath path({e});
    if (IsRestrictedSimplePath(db, rules, path, true)) {
      stack.push_back(std::move(path));
    }
  }
  while (!stack.empty()) {
    MiningPath path = std::move(stack.back());
    stack.pop_back();
    if (IsExplanationPath(db, rules, path)) {
      PathQuery q = UnwrapOrDie(PathToQuery(db, rules, path));
      int64_t support = UnwrapOrDie(executor.CountDistinct(
          q, lid, Executor::SupportStrategy::kDedupFrontier));
      if (static_cast<double>(support) >= threshold) {
        supported.insert(path.CanonicalKey());
      }
      continue;  // closed paths cannot extend
    }
    if (path.length() >= rules.max_length) continue;
    for (const auto& e : graph.EdgesFromTable(path.LastAttr().table)) {
      MiningPath candidate = path.Extend(e);
      if (IsRestrictedSimplePath(db, rules, candidate, true)) {
        stack.push_back(std::move(candidate));
      }
    }
  }
  return supported;
}

std::set<std::string> MinerKeys(const Database& db,
                                const MiningResult& result,
                                const PathRules& rules) {
  std::set<std::string> keys;
  (void)db;
  (void)rules;
  for (const auto& mined : result.templates) {
    keys.insert(mined.path.CanonicalKey());
  }
  return keys;
}

class CompletenessTest : public ::testing::TestWithParam<double> {};

INSTANTIATE_TEST_SUITE_P(Thresholds, CompletenessTest,
                         ::testing::Values(0.3, 0.5, 0.9));

TEST_P(CompletenessTest, MinerMatchesBruteForceOnToyDb) {
  Database db = BuildPaperToyDatabase();
  // Add a third access and a repeat so thresholds bite at different points.
  Table* log = db.GetTable("Log").value();
  EBA_ASSERT_OK(log->AppendRow(
      {Value::Int64(3),
       Value::Timestamp(Date::FromCivil(2010, 3, 3).ToSeconds()),
       Value::Int64(testing_util::kMike), Value::Int64(testing_util::kBob),
       Value::String("viewed")}));

  const double fraction = GetParam();
  PathRules rules;
  rules.start = AttrId{"Log", "Patient"};
  rules.end = AttrId{"Log", "User"};
  rules.max_length = 4;
  rules.max_tables = 3;
  double threshold = fraction * static_cast<double>(log->num_rows());

  std::set<std::string> expected =
      BruteForceSupported(db, rules, "Lid", threshold);

  MinerOptions options;
  options.log_table = "Log";
  options.support_fraction = fraction;
  options.max_length = rules.max_length;
  options.max_tables = rules.max_tables;

  for (bool skip : {false, true}) {
    for (auto strategy : {Executor::SupportStrategy::kNaive,
                          Executor::SupportStrategy::kDedupFrontier}) {
      options.skip_nonselective = skip;
      options.support_strategy = strategy;
      TemplateMiner miner(&db, options);
      EXPECT_EQ(MinerKeys(db, UnwrapOrDie(miner.MineOneWay()), rules),
                expected)
          << "one-way skip=" << skip;
      EXPECT_EQ(MinerKeys(db, UnwrapOrDie(miner.MineTwoWay()), rules),
                expected)
          << "two-way skip=" << skip;
      EXPECT_EQ(MinerKeys(db, UnwrapOrDie(miner.MineBridged(2)), rules),
                expected)
          << "bridge-2 skip=" << skip;
    }
  }
}

TEST(CompletenessTest, MinerMatchesBruteForceWithSelfJoinsAndMapping) {
  Database db = BuildPaperToyDatabase();
  // Mark Doctor_Info as a mapping table and tighten T: brute force and the
  // miner must agree on the exemption semantics too.
  EBA_ASSERT_OK(db.MarkMappingTable("Doctor_Info"));
  PathRules rules;
  rules.start = AttrId{"Log", "Patient"};
  rules.end = AttrId{"Log", "User"};
  rules.max_length = 4;
  rules.max_tables = 2;

  std::set<std::string> expected = BruteForceSupported(db, rules, "Lid", 1.0);

  MinerOptions options;
  options.log_table = "Log";
  options.support_fraction = 0.5;  // 1 of 2 accesses
  options.max_length = 4;
  options.max_tables = 2;
  options.skip_nonselective = false;
  MiningResult result = UnwrapOrDie(TemplateMiner(&db, options).MineOneWay());
  EXPECT_EQ(MinerKeys(db, result, rules), expected);
  EXPECT_FALSE(expected.empty());
}

/// Randomized databases: Log + two event tables with several user columns.
Database RandomMiningDatabase(uint64_t seed) {
  Random rng(seed);
  Database db;
  EBA_CHECK(db
                .CreateTable(TableSchema(
                    "Orders",
                    {ColumnDef{"Patient", DataType::kInt64, "patient", false},
                     ColumnDef{"Placer", DataType::kInt64, "user", false},
                     ColumnDef{"Filler", DataType::kInt64, "user", false}}))
                .ok());
  EBA_CHECK(db
                .CreateTable(TableSchema(
                    "Notes",
                    {ColumnDef{"Patient", DataType::kInt64, "patient", false},
                     ColumnDef{"Writer", DataType::kInt64, "user", false}}))
                .ok());
  EBA_CHECK(db.CreateTable(AccessLog::StandardSchema("Log")).ok());
  Table* orders = db.GetTable("Orders").value();
  Table* notes = db.GetTable("Notes").value();
  Table* log = db.GetTable("Log").value();
  const int64_t users = 8, patients = 15;
  for (int i = 0; i < 60; ++i) {
    EBA_CHECK(orders
                  ->AppendRow({Value::Int64(rng.UniformRange(1, patients)),
                               Value::Int64(rng.UniformRange(1, users)),
                               Value::Int64(rng.UniformRange(1, users))})
                  .ok());
  }
  for (int i = 0; i < 40; ++i) {
    EBA_CHECK(notes
                  ->AppendRow({Value::Int64(rng.UniformRange(1, patients)),
                               Value::Int64(rng.UniformRange(1, users))})
                  .ok());
  }
  for (int i = 0; i < 120; ++i) {
    EBA_CHECK(log
                  ->AppendRow({Value::Int64(i + 1),
                               Value::Timestamp(i * 60),
                               Value::Int64(rng.UniformRange(1, users)),
                               Value::Int64(rng.UniformRange(1, patients)),
                               Value::String("v")})
                  .ok());
  }
  return db;
}

class RandomCompletenessTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCompletenessTest,
                         ::testing::Values(2u, 29u, 404u));

TEST_P(RandomCompletenessTest, MinerMatchesBruteForce) {
  Database db = RandomMiningDatabase(GetParam());
  PathRules rules;
  rules.start = AttrId{"Log", "Patient"};
  rules.end = AttrId{"Log", "User"};
  rules.max_length = 4;
  rules.max_tables = 3;
  double threshold = 0.05 * 120;

  std::set<std::string> expected =
      BruteForceSupported(db, rules, "Lid", threshold);

  MinerOptions options;
  options.log_table = "Log";
  options.support_fraction = 0.05;
  options.max_length = 4;
  options.max_tables = 3;
  options.skip_nonselective = false;
  TemplateMiner miner(&db, options);
  EXPECT_EQ(MinerKeys(db, UnwrapOrDie(miner.MineOneWay()), rules), expected);
  EXPECT_EQ(MinerKeys(db, UnwrapOrDie(miner.MineBridged(2)), rules),
            expected);
  // The space is non-trivial: Orders has 2 user attrs, Notes 1, giving
  // direct and two-event-chain explanations.
  EXPECT_GE(expected.size(), 3u);
}

}  // namespace
}  // namespace eba
