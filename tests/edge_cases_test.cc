// Second-wave tests: edge cases and failure paths across modules —
// empty/degenerate inputs, safety bounds, engine behaviour on missing data,
// and executor projection handling.

#include <gtest/gtest.h>

#include <set>

#include "careweb/generator.h"
#include "careweb/workload.h"
#include "core/engine.h"
#include "core/miner.h"
#include "graph/hierarchy.h"
#include "query/executor.h"
#include "query/parser.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::BuildPaperToyDatabase;
using testing_util::UnwrapOrDie;

// --------------------------- Executor edges ---------------------------

TEST(ExecutorEdgeTest, EmptyLogYieldsEmptyResults) {
  Database db = BuildPaperToyDatabase();
  EBA_ASSERT_OK(db.CreateTable(AccessLog::StandardSchema("EmptyLog")));
  PathQuery q = UnwrapOrDie(ParsePathQuery(
      db, "EmptyLog L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User"));
  Executor executor(&db);
  EXPECT_EQ(UnwrapOrDie(executor.CountDistinct(
                q, QAttr{0, 0}, Executor::SupportStrategy::kNaive)),
            0);
  Relation rel = UnwrapOrDie(executor.Materialize(q));
  EXPECT_TRUE(rel.rows.empty());
}

TEST(ExecutorEdgeTest, EmptyEventTableYieldsEmptyJoin) {
  Database db = BuildPaperToyDatabase();
  EBA_ASSERT_OK(db.CreateTable(TableSchema(
      "Referrals", {ColumnDef{"Patient", DataType::kInt64, "patient", false},
                    ColumnDef{"Specialist", DataType::kInt64, "user",
                              false}})));
  PathQuery q = UnwrapOrDie(ParsePathQuery(
      db, "Log L, Referrals R",
      "L.Patient = R.Patient AND R.Specialist = L.User"));
  Executor executor(&db);
  EXPECT_EQ(UnwrapOrDie(executor.CountDistinct(
                q, QAttr{0, 0}, Executor::SupportStrategy::kDedupFrontier)),
            0);
}

TEST(ExecutorEdgeTest, ProjectionControlsOutputColumns) {
  Database db = BuildPaperToyDatabase();
  PathQuery q = UnwrapOrDie(ParsePathQuery(
      db, "Log L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User"));
  q.projection = {UnwrapOrDie(q.Resolve(db, "A", "Date"))};
  Executor executor(&db);
  Relation rel = UnwrapOrDie(executor.Materialize(q));
  ASSERT_EQ(rel.attrs.size(), 1u);
  ASSERT_EQ(rel.rows.size(), 1u);
  EXPECT_EQ(rel.rows[0][0].type(), DataType::kTimestamp);
}

TEST(ExecutorEdgeTest, MaterializeForUnknownLidIsEmpty) {
  Database db = BuildPaperToyDatabase();
  PathQuery q = UnwrapOrDie(ParsePathQuery(
      db, "Log L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User"));
  Executor executor(&db);
  Relation rel = UnwrapOrDie(executor.MaterializeForLogIds(
      q, QAttr{0, 0}, {Value::Int64(424242)}));
  EXPECT_TRUE(rel.rows.empty());
}

TEST(ExecutorEdgeTest, LidAttrMustBeOnVariableZero) {
  Database db = BuildPaperToyDatabase();
  PathQuery q = UnwrapOrDie(ParsePathQuery(
      db, "Log L, Appointments A", "L.Patient = A.Patient"));
  Executor executor(&db);
  EXPECT_FALSE(executor
                   .CountDistinct(q, QAttr{1, 0},
                                  Executor::SupportStrategy::kNaive)
                   .ok());
  EXPECT_FALSE(
      executor.MaterializeForLogIds(q, QAttr{1, 0}, {Value::Int64(1)}).ok());
}

TEST(ExecutorEdgeTest, SingleTableQueryWithLiteralFilter) {
  Database db = BuildPaperToyDatabase();
  PathQuery q = UnwrapOrDie(ParsePathQuery(db, "Log L", "L.Lid >= 2"));
  Executor executor(&db);
  auto values = UnwrapOrDie(executor.DistinctValues(
      q, QAttr{0, 0}, Executor::SupportStrategy::kNaive));
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0], Value::Int64(2));
}

// --------------------------- Miner edges ---------------------------

TEST(MinerEdgeTest, FrontierSafetyBoundTriggers) {
  Database db = BuildPaperToyDatabase();
  MinerOptions options;
  options.log_table = "Log";
  options.support_fraction = 0.0;  // keep everything alive
  options.max_length = 4;
  options.max_tables = 3;
  options.skip_nonselective = false;
  options.max_frontier_paths = 0;  // absurdly small bound
  auto result = TemplateMiner(&db, options).MineOneWay();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInternal());
}

TEST(MinerEdgeTest, EmptyLogMinesNothing) {
  Database db = BuildPaperToyDatabase();
  EBA_ASSERT_OK(db.CreateTable(AccessLog::StandardSchema("EmptyLog")));
  MinerOptions options;
  options.log_table = "EmptyLog";
  options.support_fraction = 0.01;
  options.skip_nonselective = false;
  options.excluded_tables = {"Log"};
  MiningResult result = UnwrapOrDie(TemplateMiner(&db, options).MineOneWay());
  // Threshold is 0 on an empty log, so templates are found but explain 0.
  for (const auto& mined : result.templates) {
    EXPECT_EQ(mined.support, 0);
  }
}

TEST(MinerEdgeTest, BridgeLengthAboveMaxDegeneratesToTwoWay) {
  Database db = BuildPaperToyDatabase();
  MinerOptions options;
  options.log_table = "Log";
  options.support_fraction = 0.5;
  options.max_length = 4;
  options.skip_nonselective = false;
  TemplateMiner miner(&db, options);
  MiningResult bridged = UnwrapOrDie(miner.MineBridged(10));
  MiningResult two_way = UnwrapOrDie(miner.MineTwoWay());
  std::set<std::string> a, b;
  for (const auto& m : bridged.templates) {
    a.insert(UnwrapOrDie(m.tmpl.CanonicalKey(db)));
  }
  for (const auto& m : two_way.templates) {
    b.insert(UnwrapOrDie(m.tmpl.CanonicalKey(db)));
  }
  EXPECT_EQ(a, b);
}

// --------------------------- Engine edges ---------------------------

TEST(EngineEdgeTest, ExplainUnknownLidReturnsEmpty) {
  Database db = BuildPaperToyDatabase();
  ExplanationEngine engine =
      UnwrapOrDie(ExplanationEngine::Create(&db, "Log"));
  EBA_ASSERT_OK(engine.AddTemplate(UnwrapOrDie(ExplanationTemplate::Parse(
      db, "appt", "Log L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User", "d"))));
  auto instances = UnwrapOrDie(engine.Explain(999999));
  EXPECT_TRUE(instances.empty());
}

TEST(EngineEdgeTest, NoTemplatesMeansNothingExplained) {
  Database db = BuildPaperToyDatabase();
  ExplanationEngine engine =
      UnwrapOrDie(ExplanationEngine::Create(&db, "Log"));
  ExplanationReport report = UnwrapOrDie(engine.ExplainAll());
  EXPECT_EQ(report.explained_lids.size(), 0u);
  EXPECT_EQ(report.unexplained_lids.size(), 2u);
  EXPECT_DOUBLE_EQ(report.Coverage(), 0.0);
}

TEST(EngineEdgeTest, CreateRejectsBadLogTable) {
  Database db = BuildPaperToyDatabase();
  EXPECT_FALSE(ExplanationEngine::Create(&db, "Nope").ok());
  EXPECT_FALSE(ExplanationEngine::Create(nullptr, "Log").ok());
  // Appointments has no Lid column.
  EXPECT_FALSE(ExplanationEngine::Create(&db, "Appointments").ok());
}

TEST(EngineEdgeTest, ExplainedLidsIndexOutOfRange) {
  Database db = BuildPaperToyDatabase();
  ExplanationEngine engine =
      UnwrapOrDie(ExplanationEngine::Create(&db, "Log"));
  EXPECT_TRUE(engine.ExplainedLids(0).status().IsOutOfRange());
}

// --------------------------- Hierarchy edges ---------------------------

TEST(HierarchyEdgeTest, MaxDepthZeroGivesOnlyGlobalGroup) {
  Table table(AccessLog::StandardSchema("L"));
  for (int i = 0; i < 4; ++i) {
    EBA_ASSERT_OK(table.AppendRow({Value::Int64(i + 1),
                                   Value::Timestamp(i * 100),
                                   Value::Int64(i % 2), Value::Int64(7),
                                   Value::String("v")}));
  }
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(&table));
  UserGraph graph = UnwrapOrDie(UserGraph::Build(log));
  HierarchyOptions options;
  options.max_depth = 0;
  GroupHierarchy h = UnwrapOrDie(GroupHierarchy::Build(graph, options));
  EXPECT_EQ(h.max_depth(), 0);
  EXPECT_EQ(h.nodes().size(), 1u);
  EXPECT_FALSE(GroupHierarchy::Build(graph, HierarchyOptions{-1, 1, {}}).ok());
}

TEST(HierarchyEdgeTest, EmptyGraph) {
  Table table(AccessLog::StandardSchema("L"));
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(&table));
  UserGraph graph = UnwrapOrDie(UserGraph::Build(log));
  GroupHierarchy h = UnwrapOrDie(GroupHierarchy::Build(graph));
  EXPECT_EQ(h.GroupsAtDepth(0).size(), 1u);
  EXPECT_TRUE(h.GroupsAtDepth(0)[0]->users.empty());
  Table groups = UnwrapOrDie(h.ToGroupsTable("G"));
  EXPECT_EQ(groups.num_rows(), 0u);
}

// --------------------------- Workload edges ---------------------------

TEST(WorkloadEdgeTest, SliceOfMissingTableFails) {
  Database db = BuildPaperToyDatabase();
  EXPECT_FALSE(AddLogSlice(&db, "Nope", "S", 1, 1, false).ok());
}

TEST(WorkloadEdgeTest, SliceOutsideDayRangeIsEmpty) {
  CareWebData data = UnwrapOrDie(GenerateCareWeb(CareWebConfig::Tiny()));
  LogSlice slice =
      UnwrapOrDie(AddLogSlice(&data.db, "Log", "S", 100, 200, false));
  EXPECT_TRUE(slice.lids.empty());
  EXPECT_EQ(UnwrapOrDie(data.db.GetTable("S"))->num_rows(), 0u);
}

TEST(WorkloadEdgeTest, ReAddingSliceReplacesIt) {
  CareWebData data = UnwrapOrDie(GenerateCareWeb(CareWebConfig::Tiny()));
  LogSlice a = UnwrapOrDie(AddLogSlice(&data.db, "Log", "S", 1, 2, false));
  LogSlice b = UnwrapOrDie(AddLogSlice(&data.db, "Log", "S", 1, 1, false));
  EXPECT_LT(b.lids.size(), a.lids.size());
  EXPECT_EQ(UnwrapOrDie(data.db.GetTable("S"))->num_rows(), b.lids.size());
}

TEST(WorkloadEdgeTest, DifferentSeedsProduceDifferentLogs) {
  CareWebConfig c1 = CareWebConfig::Tiny();
  CareWebConfig c2 = CareWebConfig::Tiny();
  c2.seed = c1.seed + 1;
  CareWebData a = UnwrapOrDie(GenerateCareWeb(c1));
  CareWebData b = UnwrapOrDie(GenerateCareWeb(c2));
  const Table* la = UnwrapOrDie(a.db.GetTable("Log"));
  const Table* lb = UnwrapOrDie(b.db.GetTable("Log"));
  bool differs = la->num_rows() != lb->num_rows();
  for (size_t r = 0; !differs && r < std::min(la->num_rows(), lb->num_rows());
       ++r) {
    if (la->GetRow(r) != lb->GetRow(r)) differs = true;
  }
  EXPECT_TRUE(differs);
}

// --------------------------- Template edges ---------------------------

TEST(TemplateEdgeTest, ParseRejectsLogWithoutLid) {
  Database db = BuildPaperToyDatabase();
  // First FROM item is Appointments, which lacks a Lid column.
  EXPECT_FALSE(ExplanationTemplate::Parse(db, "t", "Appointments A, Log L",
                                          "A.Patient = L.Patient", "d")
                   .ok());
}

TEST(TemplateEdgeTest, EngineRejectsTemplateInvalidAfterRebind) {
  Database db = BuildPaperToyDatabase();
  // A log-like table whose schema differs (extra leading column), so column
  // indexes shift and the rebind check must fail.
  EBA_ASSERT_OK(db.CreateTable(TableSchema(
      "WeirdLog", {ColumnDef{"Extra", DataType::kInt64, "", false},
                   ColumnDef{"Lid", DataType::kInt64, "lid", true},
                   ColumnDef{"Date", DataType::kTimestamp, "", false},
                   ColumnDef{"User", DataType::kInt64, "user", false},
                   ColumnDef{"Patient", DataType::kInt64, "patient", false},
                   ColumnDef{"Action", DataType::kString, "", false}})));
  ExplanationEngine engine =
      UnwrapOrDie(ExplanationEngine::Create(&db, "WeirdLog"));
  ExplanationTemplate tmpl = UnwrapOrDie(ExplanationTemplate::Parse(
      db, "appt", "Log L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User", "d"));
  EXPECT_FALSE(engine.AddTemplate(tmpl).ok());
}

}  // namespace
}  // namespace eba
