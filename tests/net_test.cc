// Auditing-server tests: frame codec round trips, token auth (including
// re-auth after disconnect), per-connection quotas, ingest backpressure,
// served-report byte-equivalence against the in-process auditor, durable
// served appends surviving a restart, concurrent clients, and a seeded
// adversarial-frame fuzz sweep — truncated prefixes, CRC flips, oversized
// lengths, unknown commands — where the server must answer with a clean
// error or drop the connection, never crash or hang. Everything runs over
// the in-memory transport (deterministic, no kernel sockets); one smoke
// test exercises the real TCP loopback path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "careweb/generator.h"
#include "careweb/workload.h"
#include "common/random.h"
#include "core/ingest.h"
#include "log/access_log.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/socket.h"
#include "storage/io.h"
#include "storage/wal.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::CloneDatabase;
using testing_util::UnwrapOrDie;

/// Status analogue of UnwrapOrDie for value-returning helpers, where the
/// ASSERT-based EBA_ASSERT_OK (void context) cannot be used.
void MustOk(const Status& s, const char* what = "Status") {
  if (!s.ok()) {
    [&] { FAIL() << what << ": " << s.ToString(); }();
    std::exit(EXIT_FAILURE);
  }
}

// ---------------------------------------------------------------------------
// Shared fixture: a Tiny careweb database with a seeded LogStream slice, the
// rest of the log as an append backlog, and the handcrafted templates.

struct NetFixture {
  CareWebData data;
  std::vector<Row> backlog;
  std::vector<ExplanationTemplate> templates;
};

const NetFixture& SharedFixture() {
  static const NetFixture* fixture = [] {
    auto* f = new NetFixture();
    f->data = UnwrapOrDie(GenerateCareWeb(CareWebConfig::Tiny()));
    const Table* log = UnwrapOrDie(f->data.db.GetTable("Log"));
    AccessLog source = UnwrapOrDie(AccessLog::Wrap(log));
    (void)UnwrapOrDie(AddLogSlice(&f->data.db, "Log", "LogStream", 1, 2,
                                  /*first_only=*/false));
    std::vector<size_t> seeded = source.RowsInDayRange(1, 2);
    std::sort(seeded.begin(), seeded.end());
    for (size_t r = 0; r < log->num_rows(); ++r) {
      if (!std::binary_search(seeded.begin(), seeded.end(), r)) {
        f->backlog.push_back(log->GetRow(r));
      }
    }
    f->templates = UnwrapOrDie(TemplatesHandcraftedDirect(f->data.db, true));
    return f;
  }();
  return *fixture;
}

StreamingOptions SmallStreamingOptions() {
  StreamingOptions options;
  options.min_rows_per_shard = 1;
  options.executor.min_rows_per_morsel = 1;
  return options;
}

/// A live server over its own clone of the fixture database.
struct ServerHarness {
  std::unique_ptr<Database> db;
  std::unique_ptr<StreamingAuditor> auditor;
  std::unique_ptr<NetEnv> net;
  std::unique_ptr<AuditServer> server;

  AuditClient& client() { return *client_; }
  std::unique_ptr<AuditClient> client_;
};

ServerHarness MakeHarness(ServerOptions options) {
  const NetFixture& f = SharedFixture();
  ServerHarness h;
  h.db = std::make_unique<Database>(CloneDatabase(f.data.db));
  h.auditor = std::make_unique<StreamingAuditor>(
      UnwrapOrDie(StreamingAuditor::Create(h.db.get(), "LogStream")));
  for (const auto& t : f.templates) MustOk(h.auditor->AddTemplate(t));
  h.net = NewInMemoryNetEnv();
  options.net = h.net.get();
  options.audit = SmallStreamingOptions();
  h.server = UnwrapOrDie(AuditServer::Start(h.auditor.get(), options));
  h.client_ = UnwrapOrDie(AuditClient::Connect(
      h.net.get(), "local", h.server->port(), options.auth_token));
  return h;
}

/// Raw connection for hand-crafted (malformed) frames.
std::unique_ptr<Connection> RawConnect(ServerHarness& h) {
  return UnwrapOrDie(h.net->Connect("local", h.server->port()));
}

/// Reads one response frame off a raw connection.
StatusOr<Frame> ReadResponse(Connection* conn) {
  FrameReader reader(conn, 64u << 20);
  return reader.Next();
}

// ---------------------------------------------------------------------------
// Frame codec

TEST(FrameTest, RoundTripThroughInMemoryPipe) {
  auto net = NewInMemoryNetEnv();
  auto listener = UnwrapOrDie(net->Listen("local", 0));
  auto client = UnwrapOrDie(net->Connect("local", listener->port()));
  auto server = UnwrapOrDie(listener->Accept());

  EBA_ASSERT_OK(client->WriteAll(EncodeFrame(kReqExplain, EncodeLid(-42))));
  EBA_ASSERT_OK(client->WriteAll(EncodeFrame(kReqReport, "")));
  FrameReader reader(server.get(), 1 << 20);
  const Frame first = UnwrapOrDie(reader.Next());
  EXPECT_EQ(first.type, kReqExplain);
  EXPECT_EQ(UnwrapOrDie(DecodeLid(first.payload)), -42);
  const Frame second = UnwrapOrDie(reader.Next());
  EXPECT_EQ(second.type, kReqReport);
  EXPECT_TRUE(second.payload.empty());

  // Clean close at a frame boundary reads as NotFound, not an error.
  client->ShutdownBoth();
  EXPECT_TRUE(reader.Next().status().IsNotFound());
}

TEST(FrameTest, CorruptionIsRejectedNotMisread) {
  const std::string good = EncodeFrame(kReqReport, "payload bytes");
  auto net = NewInMemoryNetEnv();
  auto listener = UnwrapOrDie(net->Listen("local", 0));

  // A flip of any byte must surface as InvalidArgument (CRC or, for the
  // length field, a truncated/oversized read) — never as a decoded frame
  // with different bytes.
  for (size_t off = 0; off < good.size(); ++off) {
    std::string bytes = good;
    bytes[off] = static_cast<char>(bytes[off] ^ 0x10);
    auto client = UnwrapOrDie(net->Connect("local", listener->port()));
    auto server = UnwrapOrDie(listener->Accept());
    EBA_ASSERT_OK(client->WriteAll(bytes));
    client->ShutdownBoth();
    FrameReader reader(server.get(), 1 << 10);
    const StatusOr<Frame> frame = reader.Next();
    ASSERT_FALSE(frame.ok()) << "flip at byte " << off;
    EXPECT_TRUE(frame.status().IsInvalidArgument()) << "flip at byte " << off;
  }
}

// ---------------------------------------------------------------------------
// Protocol payload codecs

TEST(ProtocolTest, StreamingReportRoundTrip) {
  StreamingReport report;
  report.audited_from = 7;
  report.audited_to = 21;
  report.full_reaudit = true;
  report.per_template_counts = {3, 0, 5};
  report.explained_lids = {-1, 4, 9};
  report.unexplained_lids = {2};
  report.delta_explained_lids = {11, 12};
  report.per_template_delta_counts = {0, 2, 0};
  report.delta_tables = 2;
  report.delta_queries = 4;

  const std::string payload = EncodeStreamingReport(report);
  const StreamingReport decoded = UnwrapOrDie(DecodeStreamingReport(payload));
  EXPECT_EQ(decoded.audited_from, report.audited_from);
  EXPECT_EQ(decoded.audited_to, report.audited_to);
  EXPECT_EQ(decoded.full_reaudit, report.full_reaudit);
  EXPECT_EQ(decoded.per_template_counts, report.per_template_counts);
  EXPECT_EQ(decoded.explained_lids, report.explained_lids);
  EXPECT_EQ(decoded.unexplained_lids, report.unexplained_lids);
  EXPECT_EQ(decoded.delta_explained_lids, report.delta_explained_lids);
  EXPECT_EQ(decoded.per_template_delta_counts,
            report.per_template_delta_counts);
  EXPECT_EQ(decoded.delta_tables, report.delta_tables);
  EXPECT_EQ(decoded.delta_queries, report.delta_queries);
  // Re-encoding the decoded report reproduces the bytes: the encoding is
  // canonical, which is what the served-equivalence check relies on.
  EXPECT_EQ(EncodeStreamingReport(decoded), payload);

  // Truncations of a valid payload must all fail cleanly.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_FALSE(DecodeStreamingReport(payload.substr(0, cut)).ok())
        << "cut at " << cut;
  }
}

TEST(ProtocolTest, ErrorAndExplainAndServerReportRoundTrip) {
  ErrorBody error;
  error.code = kErrBusy;
  error.retryable = true;
  error.message = "ingest queue full";
  const ErrorBody decoded_error = UnwrapOrDie(DecodeError(EncodeError(error)));
  EXPECT_EQ(decoded_error.code, kErrBusy);
  EXPECT_TRUE(decoded_error.retryable);
  EXPECT_EQ(decoded_error.message, "ingest queue full");

  ExplainResult explain;
  explain.explained = true;
  explain.template_names = {"appt_with_doctor", "repeat_access"};
  const ExplainResult decoded_explain =
      UnwrapOrDie(DecodeExplainResult(EncodeExplainResult(explain)));
  EXPECT_TRUE(decoded_explain.explained);
  EXPECT_EQ(decoded_explain.template_names, explain.template_names);

  ServerReport report;
  report.rows_appended = 100;
  report.audited_rows = 50;
  report.appends_rejected_busy = 3;
  const ServerReport decoded_report =
      UnwrapOrDie(DecodeServerReport(EncodeServerReport(report)));
  EXPECT_EQ(decoded_report.rows_appended, 100u);
  EXPECT_EQ(decoded_report.audited_rows, 50u);
  EXPECT_EQ(decoded_report.appends_rejected_busy, 3u);
}

// ---------------------------------------------------------------------------
// Auth

TEST(AuditServerTest, AuthRequiredAndReplayAfterDisconnectRejected) {
  ServerOptions options;
  options.auth_token = "secret-token";
  ServerHarness h = MakeHarness(options);

  // The authenticated client (harness) works.
  EBA_ASSERT_OK(h.client().AppendAccessBatch({SharedFixture().backlog[0]}));

  // A command before auth is rejected and the connection dropped.
  {
    auto raw = RawConnect(h);
    EBA_ASSERT_OK(raw->WriteAll(EncodeFrame(kReqReport, "")));
    const Frame resp = UnwrapOrDie(ReadResponse(raw.get()));
    EXPECT_EQ(resp.type, kRespError);
    EXPECT_EQ(UnwrapOrDie(DecodeError(resp.payload)).code, kErrUnauthorized);
    EXPECT_TRUE(ReadResponse(raw.get()).status().IsNotFound());  // dropped
  }
  // A wrong token is rejected.
  {
    auto raw = RawConnect(h);
    EBA_ASSERT_OK(raw->WriteAll(EncodeFrame(kReqAuth, "wrong")));
    const Frame resp = UnwrapOrDie(ReadResponse(raw.get()));
    EXPECT_EQ(resp.type, kRespError);
    EXPECT_EQ(UnwrapOrDie(DecodeError(resp.payload)).code, kErrUnauthorized);
  }
  // Disconnecting does not leave any session behind: a new connection that
  // skips auth (replaying only post-auth traffic) is rejected again.
  {
    auto raw = RawConnect(h);
    EBA_ASSERT_OK(raw->WriteAll(
        EncodeFrame(kReqAppendBatch,
                    EncodeAppendPayload("", {SharedFixture().backlog[1]}))));
    const Frame resp = UnwrapOrDie(ReadResponse(raw.get()));
    EXPECT_EQ(resp.type, kRespError);
    EXPECT_EQ(UnwrapOrDie(DecodeError(resp.payload)).code, kErrUnauthorized);
  }
  // A full reconnect with the token works.
  auto again = UnwrapOrDie(AuditClient::Connect(
      h.net.get(), "local", h.server->port(), "secret-token"));
  EBA_ASSERT_OK(again->AppendAccessBatch({SharedFixture().backlog[2]}));
}

// ---------------------------------------------------------------------------
// Malformed frames

TEST(AuditServerTest, MalformedFramesGetCleanErrorOrDropNeverCrash) {
  ServerHarness h = MakeHarness(ServerOptions{});

  // Truncated length prefix: close mid-header.
  {
    auto raw = RawConnect(h);
    EBA_ASSERT_OK(raw->WriteAll("\x05\x00"));
    raw->ShutdownBoth();
  }
  // Truncated payload: frame promises more bytes than it sends.
  {
    auto raw = RawConnect(h);
    const std::string good = EncodeFrame(kReqReport, "some payload");
    EBA_ASSERT_OK(raw->WriteAll(good.substr(0, good.size() - 3)));
    raw->ShutdownBoth();
  }
  // CRC mismatch: flip a payload bit.
  {
    auto raw = RawConnect(h);
    std::string bad = EncodeFrame(kReqExplain, EncodeLid(1));
    bad[bad.size() - 1] = static_cast<char>(bad[bad.size() - 1] ^ 0x01);
    EBA_ASSERT_OK(raw->WriteAll(bad));
    const Frame resp = UnwrapOrDie(ReadResponse(raw.get()));
    EXPECT_EQ(resp.type, kRespError);
    EXPECT_EQ(UnwrapOrDie(DecodeError(resp.payload)).code, kErrBadFrame);
    EXPECT_TRUE(ReadResponse(raw.get()).status().IsNotFound());  // dropped
  }
  // Oversized frame: length field far beyond the server's limit. The server
  // must reject on the header alone, not try to buffer it.
  {
    auto raw = RawConnect(h);
    std::string huge;
    huge.push_back('\xFF');
    huge.push_back('\xFF');
    huge.push_back('\xFF');
    huge.push_back('\x7F');
    huge.append(5, '\0');
    EBA_ASSERT_OK(raw->WriteAll(huge));
    const Frame resp = UnwrapOrDie(ReadResponse(raw.get()));
    EXPECT_EQ(resp.type, kRespError);
    EXPECT_EQ(UnwrapOrDie(DecodeError(resp.payload)).code, kErrBadFrame);
  }
  // Unknown command: clean error, connection stays usable.
  {
    auto raw = RawConnect(h);
    EBA_ASSERT_OK(raw->WriteAll(EncodeFrame(0x3F, "")));
    const Frame resp = UnwrapOrDie(ReadResponse(raw.get()));
    EXPECT_EQ(resp.type, kRespError);
    EXPECT_EQ(UnwrapOrDie(DecodeError(resp.payload)).code,
              kErrUnknownCommand);
    EBA_ASSERT_OK(raw->WriteAll(EncodeFrame(kReqReport, "")));
    EXPECT_EQ(UnwrapOrDie(ReadResponse(raw.get())).type, kRespOk);
  }
  // Well-formed frame, garbage payload: decode error, connection stays.
  {
    auto raw = RawConnect(h);
    EBA_ASSERT_OK(raw->WriteAll(EncodeFrame(kReqExplain, "not-a-lid")));
    const Frame resp = UnwrapOrDie(ReadResponse(raw.get()));
    EXPECT_EQ(resp.type, kRespError);
    EXPECT_EQ(UnwrapOrDie(DecodeError(resp.payload)).code, kErrBadRequest);
  }

  // After all of the above the server still serves.
  const ServerReport report = UnwrapOrDie(h.client().Report());
  EXPECT_GT(report.connections_accepted, 5u);
}

TEST(AuditServerTest, SeededAdversarialFrameFuzz) {
  ServerHarness h = MakeHarness(ServerOptions{});
  Random rng(20260807);

  const std::string templates[] = {
      EncodeFrame(kReqReport, ""),
      EncodeFrame(kReqExplain, EncodeLid(3)),
      EncodeFrame(kReqAppendBatch,
                  EncodeAppendPayload("", {SharedFixture().backlog[0]})),
      EncodeFrame(kReqExplainNew, ""),
  };
  for (int round = 0; round < 200; ++round) {
    auto raw = RawConnect(h);
    std::string bytes;
    switch (rng.Uniform(4)) {
      case 0: {  // pure random bytes
        const size_t n = rng.Uniform(64) + 1;
        for (size_t i = 0; i < n; ++i) {
          bytes.push_back(static_cast<char>(rng.Uniform(256)));
        }
        break;
      }
      case 1: {  // valid frame, one byte mutated
        bytes = templates[rng.Uniform(4)];
        bytes[rng.Uniform(bytes.size())] ^=
            static_cast<char>(1 + rng.Uniform(255));
        break;
      }
      case 2: {  // valid frame truncated
        bytes = templates[rng.Uniform(4)];
        bytes.resize(rng.Uniform(bytes.size()));
        break;
      }
      default: {  // valid frame then garbage tail
        bytes = templates[rng.Uniform(4)];
        for (int i = 0; i < 8; ++i) {
          bytes.push_back(static_cast<char>(rng.Uniform(256)));
        }
        break;
      }
    }
    (void)raw->WriteAll(bytes);
    // Drain whatever the server answers until it drops or goes idle; the
    // requirement is no crash and no hang (the suite timeout enforces it).
    raw->ShutdownBoth();
  }

  // The server survived 200 adversarial connections and still works. A
  // fresh client connected after the loop sits behind all 200 in the accept
  // queue, so a successful round trip on it proves every one was accepted
  // and handled (the counter assertion is race-free only then).
  auto fresh = UnwrapOrDie(
      AuditClient::Connect(h.net.get(), "local", h.server->port(), ""));
  EBA_ASSERT_OK(fresh->AppendAccessBatch({SharedFixture().backlog[1]}));
  const ServerReport report = UnwrapOrDie(fresh->Report());
  EXPECT_GT(report.connections_accepted, 200u);
}

// ---------------------------------------------------------------------------
// Quotas and backpressure

TEST(AuditServerTest, PerConnectionQuotaDropsAtLimit) {
  ServerOptions options;
  options.max_requests_per_connection = 3;
  ServerHarness h = MakeHarness(options);

  for (int i = 0; i < 3; ++i) {
    EBA_ASSERT_OK(h.client().Report().status());
  }
  const Status over = h.client().Report().status();
  ASSERT_FALSE(over.ok());
  EXPECT_NE(over.message().find("quota"), std::string::npos)
      << over.ToString();
  // The connection is dropped; a fresh one gets a fresh quota.
  auto again = UnwrapOrDie(
      AuditClient::Connect(h.net.get(), "local", h.server->port(), ""));
  EBA_ASSERT_OK(again->Report().status());
}

TEST(AuditServerTest, FullIngestQueueRejectsRetryablyThenRecovers) {
  ServerOptions options;
  options.max_pending_appends = 1;
  ServerHarness h = MakeHarness(options);
  const NetFixture& f = SharedFixture();

  h.server->PauseIngestForTest();
  // First append occupies the single queue slot; run it from a second
  // client so this thread is free to observe the rejection.
  auto filler = UnwrapOrDie(
      AuditClient::Connect(h.net.get(), "local", h.server->port(), ""));
  std::thread fill([&] {
    EBA_ASSERT_OK(filler->AppendAccessBatch({f.backlog[0]}));
  });
  // Wait until the slot is taken (the filler thread enqueued).
  for (;;) {
    const ServerReport r = UnwrapOrDie(h.client().Report());
    (void)r;
    const Status busy_probe = h.client().AppendAccessBatch({f.backlog[1]});
    if (!busy_probe.ok()) {
      EXPECT_TRUE(AuditClient::IsRetryableBusy(busy_probe))
          << busy_probe.ToString();
      break;
    }
    // Both probes got in before the filler: drain and retry.
    h.server->ResumeIngestForTest();
    h.server->PauseIngestForTest();
  }
  h.server->ResumeIngestForTest();
  fill.join();

  // After the queue drains, the same append succeeds on retry.
  Status retried = h.client().AppendAccessBatch({f.backlog[2]});
  for (int attempt = 0; !retried.ok() && attempt < 100; ++attempt) {
    ASSERT_TRUE(AuditClient::IsRetryableBusy(retried)) << retried.ToString();
    retried = h.client().AppendAccessBatch({f.backlog[2]});
  }
  EBA_ASSERT_OK(retried);
  const ServerReport report = UnwrapOrDie(h.client().Report());
  EXPECT_GT(report.appends_rejected_busy, 0u);
}

// ---------------------------------------------------------------------------
// Served audits == in-process audits

TEST(AuditServerTest, ServedReportsAreByteIdenticalToInProcess) {
  const NetFixture& f = SharedFixture();
  ServerHarness h = MakeHarness(ServerOptions{});

  // The in-process twin: same data, same templates, same audit options,
  // driven directly.
  Database twin_db = CloneDatabase(f.data.db);
  StreamingAuditor twin =
      UnwrapOrDie(StreamingAuditor::Create(&twin_db, "LogStream"));
  for (const auto& t : f.templates) EBA_ASSERT_OK(twin.AddTemplate(t));

  size_t pos = 0;
  auto batch = [&](size_t n) {
    std::vector<Row> rows;
    for (; n > 0 && pos < f.backlog.size(); --n) {
      rows.push_back(f.backlog[pos++]);
    }
    return rows;
  };
  for (int round = 0; round < 3; ++round) {
    const std::vector<Row> rows = batch(4);
    EBA_ASSERT_OK(h.client().AppendAccessBatch(rows));
    EBA_ASSERT_OK(twin.AppendAccessBatch(rows));
    const std::string served = UnwrapOrDie(h.client().ExplainNewRaw());
    const StreamingReport expected =
        UnwrapOrDie(twin.ExplainNew(SmallStreamingOptions()));
    EXPECT_EQ(served, EncodeStreamingReport(expected)) << "round " << round;
  }

  // Per-access explains agree with the in-process engine for every audited
  // access.
  const Table* stream = UnwrapOrDie(
      static_cast<const Database&>(twin_db).GetTable("LogStream"));
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(stream));
  for (size_t r = 0; r < stream->num_rows(); ++r) {
    const int64_t lid = log.Get(r).lid;
    const ExplainResult served = UnwrapOrDie(h.client().Explain(lid));
    const auto instances = UnwrapOrDie(twin.engine().Explain(lid));
    ASSERT_EQ(served.explained, !instances.empty()) << "lid " << lid;
    ASSERT_EQ(served.template_names.size(), instances.size())
        << "lid " << lid;
    for (size_t i = 0; i < instances.size(); ++i) {
      EXPECT_EQ(served.template_names[i], instances[i].tmpl().name())
          << "lid " << lid << " instance " << i;
    }
  }

  // The report counters reflect the served traffic.
  const ServerReport report = UnwrapOrDie(h.client().Report());
  EXPECT_EQ(report.rows_appended, pos);
  EXPECT_EQ(report.batches_appended, 3u);
  EXPECT_EQ(report.audited_rows, twin.audited_rows());
  EXPECT_EQ(report.explained_count, twin.explained_count());
}

// ---------------------------------------------------------------------------
// Concurrency: explains fan out while appends stream through the writer

TEST(AuditServerTest, ConcurrentClientsExplainWhileAppending) {
  const NetFixture& f = SharedFixture();
  ServerHarness h = MakeHarness(ServerOptions{});

  const Table* source = UnwrapOrDie(
      static_cast<const Database&>(f.data.db).GetTable("LogStream"));
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(source));
  const int64_t probe_lid = log.Get(0).lid;

  std::thread appender([&] {
    auto client = UnwrapOrDie(
        AuditClient::Connect(h.net.get(), "local", h.server->port(), ""));
    for (size_t i = 0; i < f.backlog.size(); ++i) {
      Status s = client->AppendAccessBatch({f.backlog[i]});
      while (AuditClient::IsRetryableBusy(s)) {
        s = client->AppendAccessBatch({f.backlog[i]});
      }
      EBA_ASSERT_OK(s);
    }
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      auto client = UnwrapOrDie(
          AuditClient::Connect(h.net.get(), "local", h.server->port(), ""));
      for (int i = 0; i < 10; ++i) {
        if (t == 0) {
          (void)UnwrapOrDie(client->ExplainNew());
        } else {
          (void)UnwrapOrDie(client->Explain(probe_lid));
          (void)UnwrapOrDie(client->Report());
        }
      }
    });
  }
  appender.join();
  for (auto& r : readers) r.join();

  // Every appended row arrived exactly once, and a final audit converges.
  const ServerReport report = UnwrapOrDie(h.client().Report());
  EXPECT_EQ(report.rows_appended, f.backlog.size());
  (void)UnwrapOrDie(h.client().ExplainNew());
  const ServerReport after = UnwrapOrDie(h.client().Report());
  EXPECT_EQ(after.audited_rows, source->num_rows() + f.backlog.size());
}

// ---------------------------------------------------------------------------
// Durability through the served append path

TEST(AuditServerTest, ServedAppendsSurviveRestart) {
  const NetFixture& f = SharedFixture();
  const std::string dir = ::testing::TempDir() + "/net_served_durable";
  EBA_ASSERT_OK(RealEnv()->RemoveAll(dir));
  EBA_ASSERT_OK(RealEnv()->CreateDirs(dir));
  DurabilityOptions dopts;
  dopts.dir = dir;
  dopts.sync = WalSync::kNone;
  dopts.checkpoint_after_wal_bytes = 0;

  size_t acked = 0;
  {
    Database db = CloneDatabase(f.data.db);
    StreamingAuditor auditor =
        UnwrapOrDie(StreamingAuditor::Create(&db, "LogStream"));
    for (const auto& t : f.templates) EBA_ASSERT_OK(auditor.AddTemplate(t));
    EBA_ASSERT_OK(auditor.EnableDurability(dopts));
    auto net = NewInMemoryNetEnv();
    ServerOptions options;
    options.net = net.get();
    options.audit = SmallStreamingOptions();
    auto server = UnwrapOrDie(AuditServer::Start(&auditor, options));
    auto client =
        UnwrapOrDie(AuditClient::Connect(net.get(), "local", server->port(), ""));
    for (size_t i = 0; i < 8 && i < f.backlog.size(); ++i) {
      EBA_ASSERT_OK(client->AppendAccessBatch({f.backlog[i]}));
      ++acked;
    }
    server->Stop();
  }  // the process "dies": server, auditor, database all gone

  Database db = CloneDatabase(f.data.db);
  RecoveryStats stats;
  EBA_ASSERT_OK_AND_ASSIGN(
      StreamingAuditor recovered,
      StreamingAuditor::RecoverFrom(&db, "LogStream", dopts, &stats));
  EXPECT_TRUE(stats.recovered);
  const size_t seeded = UnwrapOrDie(static_cast<const Database&>(f.data.db)
                                        .GetTable("LogStream"))
                            ->num_rows();
  const Table* stream =
      UnwrapOrDie(static_cast<const Database&>(db).GetTable("LogStream"));
  EXPECT_EQ(stream->num_rows(), seeded + acked);
}

// ---------------------------------------------------------------------------
// Real TCP loopback

TEST(AuditServerTest, RealTcpLoopbackSmoke) {
  const NetFixture& f = SharedFixture();
  Database db = CloneDatabase(f.data.db);
  StreamingAuditor auditor =
      UnwrapOrDie(StreamingAuditor::Create(&db, "LogStream"));
  for (const auto& t : f.templates) EBA_ASSERT_OK(auditor.AddTemplate(t));

  ServerOptions options;
  options.auth_token = "tcp-token";
  options.audit = SmallStreamingOptions();
  StatusOr<std::unique_ptr<AuditServer>> server =
      AuditServer::Start(&auditor, options);
  if (!server.ok()) {
    GTEST_SKIP() << "loopback TCP unavailable in this sandbox: "
                 << server.status().ToString();
  }
  StatusOr<std::unique_ptr<AuditClient>> client = AuditClient::Connect(
      RealNetEnv(), "127.0.0.1", (*server)->port(), "tcp-token");
  if (!client.ok()) {
    GTEST_SKIP() << "loopback TCP connect unavailable: "
                 << client.status().ToString();
  }
  EBA_ASSERT_OK((*client)->AppendAccessBatch({f.backlog[0]}));
  const StreamingReport report = UnwrapOrDie((*client)->ExplainNew());
  EXPECT_GT(report.audited_to, 0u);
  const ServerReport counters = UnwrapOrDie((*client)->Report());
  EXPECT_EQ(counters.rows_appended, 1u);
}

}  // namespace
}  // namespace eba
