// Equivalence tests for the late-materialization executor: the boxed
// reference engine (ExecutorOptions::Engine::kBoxedReference) is the oracle,
// and the row-id frame engine — with and without cost-based join ordering —
// must return identical results across randomized path queries over the
// Figure 3 toy database and a generated CareWeb database, plus targeted
// unit tests for the distinct-lid semi-join fast path.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "careweb/generator.h"
#include "careweb/workload.h"
#include "common/random.h"
#include "core/engine.h"
#include "graph/schema_graph.h"
#include "query/executor.h"
#include "query/optimizer.h"
#include "query/parser.h"
#include "query/plan_cache.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::BuildPaperToyDatabase;
using testing_util::UnwrapOrDie;

ExecutorOptions BoxedReference() {
  ExecutorOptions o;
  o.engine = ExecutorOptions::Engine::kBoxedReference;
  o.join_order = ExecutorOptions::JoinOrder::kDeclared;
  return o;
}

ExecutorOptions LateDeclared() {
  ExecutorOptions o;
  o.engine = ExecutorOptions::Engine::kLateMaterialization;
  o.join_order = ExecutorOptions::JoinOrder::kDeclared;
  return o;
}

ExecutorOptions LateCostBased() {
  ExecutorOptions o;
  o.engine = ExecutorOptions::Engine::kLateMaterialization;
  o.join_order = ExecutorOptions::JoinOrder::kCostBased;
  return o;
}

/// Rows of a relation as a sorted multiset (join order permutes row order,
/// so equivalence is on content).
std::vector<Row> SortedRows(Relation rel) {
  std::sort(rel.rows.begin(), rel.rows.end());
  return std::move(rel.rows);
}

std::string DescribeQuery(const Database& db, const PathQuery& q) {
  std::string out = "FROM ";
  for (const auto& v : q.vars) out += v.table + " " + v.alias + ", ";
  out += "| " + std::to_string(q.join_chain.size()) + " chain, " +
         std::to_string(q.extra_conditions.size()) + " extra, " +
         std::to_string(q.const_conditions.size()) + " const";
  (void)db;
  return out;
}

/// Generates a random executable path query: a restricted simple path grown
/// forward from Log.Patient (so variable 0 is always connected), decorated
/// with random literal/attribute conditions and a random projection.
struct QueryGenerator {
  const Database* db;
  SchemaGraph graph;
  PathRules rules;
  Random rng;

  QueryGenerator(const Database* database, uint64_t seed)
      : db(database), rng(seed) {
    graph = UnwrapOrDie(SchemaGraph::Build(*db));
    rules.start = AttrId{"Log", "Patient"};
    rules.end = AttrId{"Log", "User"};
    rules.max_length = 5;
    rules.max_tables = 3;
  }

  StatusOr<PathQuery> Next() {
    const int target_len = 1 + static_cast<int>(rng.Uniform(3));
    MiningPath path;
    for (int step = 0; step < target_len; ++step) {
      std::vector<MiningPath> extensions;
      for (const auto& edge : graph.edges()) {
        MiningPath candidate =
            path.empty() ? MiningPath({edge}) : path.Extend(edge);
        if (candidate.FirstAttr() != rules.start) continue;
        if (IsRestrictedSimplePath(*db, rules, candidate,
                                   /*anchored_forward=*/true)) {
          extensions.push_back(std::move(candidate));
        }
      }
      if (extensions.empty()) break;
      path = rng.Choice(extensions);
    }
    if (path.empty()) return Status::Internal("no extensions from start");
    EBA_ASSIGN_OR_RETURN(PathQuery q, PathToQuery(*db, rules, path));
    Decorate(&q);
    return q;
  }

  void Decorate(PathQuery* q) {
    // Literal decoration: an actual cell value of a random referenced
    // column, so the condition is satisfiable but selective.
    if (rng.Bernoulli(0.5)) {
      const int var = static_cast<int>(rng.Uniform(q->vars.size()));
      const Table* table =
          UnwrapOrDie(db->GetTable(q->vars[static_cast<size_t>(var)].table));
      if (table->num_rows() > 0) {
        const int col = static_cast<int>(rng.Uniform(table->num_columns()));
        const size_t row = static_cast<size_t>(rng.Uniform(table->num_rows()));
        Value literal = table->Get(row, static_cast<size_t>(col));
        const CmpOp op = rng.Bernoulli(0.7) ? CmpOp::kEq
                         : rng.Bernoulli(0.5) ? CmpOp::kLe
                                              : CmpOp::kGe;
        q->const_conditions.push_back(
            ConstCondition{QAttr{var, col}, op, std::move(literal)});
      }
    }
    // Attribute-attribute decoration between two same-type columns.
    if (rng.Bernoulli(0.3)) {
      std::vector<std::pair<QAttr, DataType>> attrs;
      for (size_t v = 0; v < q->vars.size(); ++v) {
        const Table* table = UnwrapOrDie(db->GetTable(q->vars[v].table));
        for (size_t c = 0; c < table->num_columns(); ++c) {
          attrs.push_back({QAttr{static_cast<int>(v), static_cast<int>(c)},
                           table->column(c).type()});
        }
      }
      for (int attempt = 0; attempt < 8; ++attempt) {
        const auto& a = attrs[rng.Uniform(attrs.size())];
        const auto& b = attrs[rng.Uniform(attrs.size())];
        if (a.first == b.first || a.second != b.second) continue;
        const CmpOp op = rng.Bernoulli(0.5) ? CmpOp::kEq : CmpOp::kLt;
        q->extra_conditions.push_back(VarCondition{a.first, op, b.first});
        break;
      }
    }
    // Random projection over referenced attributes (empty = all referenced).
    if (rng.Bernoulli(0.5)) {
      std::vector<QAttr> referenced = q->ReferencedAttrs();
      rng.Shuffle(&referenced);
      const size_t keep = 1 + rng.Uniform(referenced.size());
      referenced.resize(keep);
      q->projection = std::move(referenced);
    }
  }
};

/// Runs one query through the oracle, both frame configurations, and a
/// plan-cached frame executor (executed twice: the first run records the
/// compiled plan, the second replays it) and asserts identical result sets,
/// distinct values, and counts.
void ExpectEquivalent(const Database& db, const PathQuery& q, QAttr lid_attr) {
  Executor reference(&db, BoxedReference());
  Executor late(&db, LateDeclared());
  Executor late_cost(&db, LateCostBased());
  PlanCache cache;
  ExecutorOptions cached_options = LateCostBased();
  cached_options.plan_cache = &cache;
  Executor late_cached(&db, cached_options);
  const std::string desc = DescribeQuery(db, q);

  auto ref_rel = reference.Materialize(q);
  auto late_rel = late.Materialize(q);
  auto cost_rel = late_cost.Materialize(q);
  auto cached_rel = late_cached.Materialize(q);
  auto replay_rel = late_cached.Materialize(q);
  ASSERT_EQ(ref_rel.ok(), late_rel.ok()) << desc;
  ASSERT_EQ(ref_rel.ok(), cost_rel.ok()) << desc;
  ASSERT_EQ(ref_rel.ok(), cached_rel.ok()) << desc;
  ASSERT_EQ(ref_rel.ok(), replay_rel.ok()) << desc;
  if (ref_rel.ok()) {
    ASSERT_EQ(ref_rel->attrs, late_rel->attrs) << desc;
    ASSERT_EQ(ref_rel->attrs, cost_rel->attrs) << desc;
    // Same join order must give byte-identical row order, not just the same
    // multiset; cost-based ordering may permute rows.
    EXPECT_EQ(ref_rel->rows, late_rel->rows) << desc;
    // The cached executor runs the same cost-based plan: its recording run
    // matches the uncached cost-based executor row for row, and the replay
    // matches the recording byte for byte.
    EXPECT_EQ(cached_rel->rows, cost_rel->rows) << desc;
    EXPECT_EQ(replay_rel->rows, cached_rel->rows) << desc;
    EXPECT_TRUE(late_cached.last_stats().plan_cache_hit) << desc;
    EXPECT_EQ(SortedRows(std::move(*ref_rel)), SortedRows(std::move(*cost_rel)))
        << desc;
  }

  for (auto strategy : {Executor::SupportStrategy::kNaive,
                        Executor::SupportStrategy::kDedupFrontier}) {
    auto ref_vals = reference.DistinctValues(q, lid_attr, strategy);
    auto late_vals = late.DistinctValues(q, lid_attr, strategy);
    auto cost_vals = late_cost.DistinctValues(q, lid_attr, strategy);
    ASSERT_EQ(ref_vals.ok(), late_vals.ok()) << desc;
    ASSERT_EQ(ref_vals.ok(), cost_vals.ok()) << desc;
    if (ref_vals.ok()) {
      EXPECT_EQ(*ref_vals, *late_vals) << desc;
      EXPECT_EQ(*ref_vals, *cost_vals) << desc;
    }
  }

  auto ref_lids = reference.DistinctLids(q, lid_attr);
  auto late_lids = late.DistinctLids(q, lid_attr);
  auto cost_lids = late_cost.DistinctLids(q, lid_attr);
  auto cached_lids = late_cached.DistinctLids(q, lid_attr);
  auto replay_lids = late_cached.DistinctLids(q, lid_attr);
  ASSERT_EQ(ref_lids.ok(), late_lids.ok()) << desc;
  ASSERT_EQ(ref_lids.ok(), cost_lids.ok()) << desc;
  ASSERT_EQ(ref_lids.ok(), cached_lids.ok()) << desc;
  if (ref_lids.ok()) {
    EXPECT_EQ(*ref_lids, *late_lids) << desc;
    EXPECT_EQ(*ref_lids, *cost_lids) << desc;
    EXPECT_EQ(*ref_lids, *cached_lids) << desc;
    EXPECT_EQ(*ref_lids, *replay_lids) << desc;
  }
}

/// Property sweep over one database; `queries` counts executed (non-skipped)
/// queries. Oversized plans (estimator predicts a huge boxed intermediate)
/// are skipped so the oracle stays fast.
void RunPropertySweep(const Database& db, uint64_t seed, int queries) {
  QueryGenerator gen(&db, seed);
  CardinalityEstimator estimator(&db);
  const Table* log = UnwrapOrDie(db.GetTable("Log"));
  const int lid_col = log->schema().ColumnIndex("Lid");
  ASSERT_GE(lid_col, 0);
  const QAttr lid_attr{0, lid_col};

  int executed = 0;
  int attempts = 0;
  while (executed < queries && attempts < queries * 20) {
    ++attempts;
    auto q = gen.Next();
    if (!q.ok()) continue;
    auto est = estimator.EstimateRows(*q);
    if (!est.ok() || *est > 5e4) continue;
    ExpectEquivalent(db, *q, lid_attr);
    if (::testing::Test::HasFatalFailure()) return;
    ++executed;
  }
  EXPECT_EQ(executed, queries) << "generator starved after " << attempts
                               << " attempts";
}

TEST(ExecutorEquivalenceTest, RandomQueriesOnPaperToyDatabase) {
  Database db = BuildPaperToyDatabase();
  RunPropertySweep(db, /*seed=*/0x5eed0001, /*queries=*/60);
}

TEST(ExecutorEquivalenceTest, RandomQueriesOnCareWebDatabase) {
  CareWebData data = UnwrapOrDie(GenerateCareWeb(CareWebConfig::Tiny()));
  RunPropertySweep(data.db, /*seed=*/0x5eed0002, /*queries=*/60);
}

TEST(ExecutorEquivalenceTest, ExplainAllReportsMatchAcrossEngines) {
  CareWebData data = UnwrapOrDie(GenerateCareWeb(CareWebConfig::Tiny()));
  ExplanationEngine engine =
      UnwrapOrDie(ExplanationEngine::Create(&data.db, "Log"));
  for (auto& tmpl : UnwrapOrDie(TemplatesHandcraftedDirect(data.db, true))) {
    EBA_ASSERT_OK(engine.AddTemplate(tmpl));
  }
  ASSERT_GT(engine.num_templates(), 0u);

  ExplainAllOptions boxed;
  boxed.executor = BoxedReference();
  EBA_ASSERT_OK_AND_ASSIGN(ExplanationReport reference,
                           engine.ExplainAll(boxed));

  for (const auto& options : {LateDeclared(), LateCostBased()}) {
    ExplainAllOptions late;
    late.executor = options;
    EBA_ASSERT_OK_AND_ASSIGN(ExplanationReport report, engine.ExplainAll(late));
    EXPECT_EQ(report.log_size, reference.log_size);
    EXPECT_EQ(report.per_template_counts, reference.per_template_counts);
    EXPECT_EQ(report.explained_lids, reference.explained_lids);
    EXPECT_EQ(report.unexplained_lids, reference.unexplained_lids);
  }
}

// --------------------- Semi-join fast path unit tests ---------------------

class SemiJoinTest : public ::testing::Test {
 protected:
  SemiJoinTest() : db_(BuildPaperToyDatabase()) {}

  /// Template (B): Appointments, Doctor_Info x2 — every non-log variable is
  /// dangling (never projected) when only distinct lids are requested.
  PathQuery TemplateB() {
    return UnwrapOrDie(ParsePathQuery(
        db_, "Log L, Appointments A, Doctor_Info I1, Doctor_Info I2",
        "L.Patient = A.Patient AND A.Doctor = I1.Doctor AND "
        "I1.Department = I2.Department AND I2.Doctor = L.User"));
  }
  QAttr Lid() { return QAttr{0, 0}; }

  Database db_;
};

TEST_F(SemiJoinTest, DistinctLidsTakesSemiJoinPath) {
  Executor late(&db_, LateDeclared());
  auto lids = UnwrapOrDie(late.DistinctLids(TemplateB(), Lid()));
  EXPECT_EQ(lids, (std::vector<int64_t>{1, 2}));
  EXPECT_TRUE(late.last_stats().used_semi_join);
  EXPECT_EQ(late.last_stats().joins_executed, 3u);
}

TEST_F(SemiJoinTest, DanglingVariableDedupBoundsIntermediate) {
  // Multiply the dangling Appointments variable: 6 duplicate appointments
  // explode the naive intermediate but the semi-join frontier stays at the
  // distinct (lid) domain after the dangling variable is dropped.
  Table* appt = db_.GetTable("Appointments").value();
  for (int i = 0; i < 6; ++i) {
    EBA_ASSERT_OK(appt->AppendRow(
        {Value::Int64(testing_util::kAlice),
         Value::Timestamp(Date::FromCivil(2011, 1, 1 + i).ToSeconds()),
         Value::Int64(testing_util::kDave)}));
  }
  PathQuery q = UnwrapOrDie(ParsePathQuery(
      db_, "Log L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User"));

  Executor late(&db_, LateDeclared());
  EXPECT_EQ(UnwrapOrDie(late.CountDistinct(
                q, Lid(), Executor::SupportStrategy::kNaive)),
            1);
  const size_t naive_peak = late.last_stats().peak_intermediate;

  EXPECT_EQ(UnwrapOrDie(late.CountDistinct(
                q, Lid(), Executor::SupportStrategy::kDedupFrontier)),
            1);
  EXPECT_TRUE(late.last_stats().used_semi_join);
  EXPECT_LE(late.last_stats().peak_intermediate, naive_peak);

  // The boxed oracle agrees.
  Executor reference(&db_, BoxedReference());
  EXPECT_EQ(UnwrapOrDie(reference.CountDistinct(
                q, Lid(), Executor::SupportStrategy::kDedupFrontier)),
            1);
}

TEST_F(SemiJoinTest, CostBasedOrderRecordedInStats) {
  Executor late_cost(&db_, LateCostBased());
  (void)UnwrapOrDie(late_cost.DistinctLids(TemplateB(), Lid()));
  const ExecStats& stats = late_cost.last_stats();
  EXPECT_TRUE(stats.used_cost_based_order);
  ASSERT_EQ(stats.join_order.size(), 4u);  // 3 binding joins + 1 filter
  for (const auto& step : stats.join_order) {
    EXPECT_GE(step.condition_index, 0);
    EXPECT_LT(step.condition_index, 4);
    if (!step.is_filter) {
      EXPECT_GE(step.estimated_rows, 0.0);  // the estimator was consulted
    }
  }
}

TEST_F(SemiJoinTest, MaterializeForLogIdsMatchesReference) {
  PathQuery q = TemplateB();
  const std::vector<Value> lids = {Value::Int64(2), Value::Int64(1)};
  Executor reference(&db_, BoxedReference());
  Executor late(&db_, LateDeclared());
  Relation ref_rel = UnwrapOrDie(reference.MaterializeForLogIds(q, Lid(), lids));
  Relation late_rel = UnwrapOrDie(late.MaterializeForLogIds(q, Lid(), lids));
  EXPECT_EQ(ref_rel.attrs, late_rel.attrs);
  EXPECT_EQ(ref_rel.rows, late_rel.rows);
}

}  // namespace
}  // namespace eba
