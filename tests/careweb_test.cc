// Tests for the synthetic CareWeb generator and the workload scaffolding:
// schema shape, ground-truth consistency, structural properties the paper's
// results depend on, and log slicing / eval-log construction.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_set>

#include "careweb/generator.h"
#include "careweb/workload.h"
#include "log/access_log.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::UnwrapOrDie;

/// Shared tiny data set (generated once; tests treat it as read-only).
const CareWebData& SharedTiny() {
  static CareWebData* data = [] {
    auto generated = GenerateCareWeb(CareWebConfig::Tiny());
    EBA_CHECK_MSG(generated.ok(), generated.status().ToString());
    return new CareWebData(std::move(generated).value());
  }();
  return *data;
}

TEST(CareWebTest, SchemaComplete) {
  const CareWebData& data = SharedTiny();
  for (const char* table :
       {"Users", "Patients", "Appointments", "Visits", "Documents", "Labs",
        "Medications", "Radiology", "UserMap", "Log"}) {
    EXPECT_TRUE(data.db.HasTable(table)) << table;
  }
  EXPECT_TRUE(data.db.IsMappingTable("UserMap"));
  EXPECT_TRUE(data.db.IsSelfJoinAllowed(AttrId{"Users", "Department"}));
  // Log self-joins are intentionally NOT allowed for mining (§5.3.3): the
  // undecorated Log-Log path would match every access against itself.
  EXPECT_FALSE(data.db.IsSelfJoinAllowed(AttrId{"Log", "Patient"}));
  EXPECT_FALSE(data.db.IsSelfJoinAllowed(AttrId{"Log", "User"}));
}

TEST(CareWebTest, DeterministicForSeed) {
  CareWebConfig config = CareWebConfig::Tiny();
  CareWebData a = UnwrapOrDie(GenerateCareWeb(config));
  CareWebData b = UnwrapOrDie(GenerateCareWeb(config));
  const Table* la = a.db.GetTable("Log").value();
  const Table* lb = b.db.GetTable("Log").value();
  ASSERT_EQ(la->num_rows(), lb->num_rows());
  for (size_t r = 0; r < std::min<size_t>(la->num_rows(), 200); ++r) {
    EXPECT_EQ(la->GetRow(r), lb->GetRow(r));
  }
}

TEST(CareWebTest, LogShape) {
  const CareWebData& data = SharedTiny();
  const Table* log_table = data.db.GetTable("Log").value();
  ASSERT_GT(log_table->num_rows(), 500u);
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(log_table));

  // Lids sequential from 1, timestamps non-decreasing.
  int64_t prev_time = 0;
  for (size_t r = 0; r < log.size(); ++r) {
    AccessLog::Entry e = log.Get(r);
    EXPECT_EQ(e.lid, static_cast<int64_t>(r) + 1);
    EXPECT_GE(e.time, prev_time);
    prev_time = e.time;
  }
  // Log spans the configured number of days.
  auto days = log.DayIndexes();
  EXPECT_EQ(*std::max_element(days.begin(), days.end()), data.config.num_days);
}

TEST(CareWebTest, GroundTruthConsistent) {
  const CareWebData& data = SharedTiny();
  const Table* log_table = data.db.GetTable("Log").value();
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(log_table));

  // Every access has a reason tag; users/patients come from the population.
  std::unordered_set<int64_t> users(data.truth.all_users.begin(),
                                    data.truth.all_users.end());
  std::unordered_set<int64_t> patients(data.truth.all_patients.begin(),
                                       data.truth.all_patients.end());
  for (size_t r = 0; r < log.size(); ++r) {
    AccessLog::Entry e = log.Get(r);
    ASSERT_TRUE(data.truth.access_reason.count(e.lid));
    EXPECT_TRUE(users.count(e.user));
    EXPECT_TRUE(patients.count(e.patient));
  }
  EXPECT_EQ(data.truth.teams.size(),
            static_cast<size_t>(data.config.num_teams));
  for (const auto& team : data.truth.teams) {
    EXPECT_FALSE(team.doctors.empty());
    EXPECT_GE(team.dept_codes.size(), 2u);
  }
}

TEST(CareWebTest, UserMapBijection) {
  const CareWebData& data = SharedTiny();
  const Table* map = data.db.GetTable("UserMap").value();
  EXPECT_EQ(map->num_rows(), data.truth.all_users.size());
  for (size_t r = 0; r < map->num_rows(); ++r) {
    EXPECT_EQ(map->Get(r, 1).AsInt64(),
              map->Get(r, 0).AsInt64() + data.config.audit_id_offset);
  }
}

TEST(CareWebTest, StructuralShapeMatchesPaper) {
  const CareWebData& data = SharedTiny();
  const Table* log_table = data.db.GetTable("Log").value();
  AccessLog log = UnwrapOrDie(AccessLog::Wrap(log_table));

  // Repeat accesses are a substantial share of the log (paper: a majority).
  size_t repeats = log.RepeatAccessLids().size();
  double repeat_share = static_cast<double>(repeats) /
                        static_cast<double>(log.size());
  EXPECT_GT(repeat_share, 0.35);

  // User-patient density is low (paper: 0.0003 at full scale; the tiny
  // config is much denser but still small).
  EXPECT_LT(log.UserPatientDensity(), 0.2);

  // A small fraction of accesses is unexplainable by construction.
  size_t unexplainable = 0;
  for (const auto& [lid, reason] : data.truth.access_reason) {
    if (reason == "random" || reason == "missing_event") ++unexplainable;
  }
  double unexplainable_share = static_cast<double>(unexplainable) /
                               static_cast<double>(log.size());
  EXPECT_GT(unexplainable_share, 0.0);
  EXPECT_LT(unexplainable_share, 0.15);
}

TEST(CareWebTest, EventTablesPopulated) {
  const CareWebData& data = SharedTiny();
  for (const auto& [table, column] : AllEventTables()) {
    const Table* t = data.db.GetTable(table).value();
    EXPECT_GT(t->num_rows(), 0u) << table;
    EXPECT_GE(t->schema().ColumnIndex(column), 0) << table;
  }
  EXPECT_EQ(DataSetAEventTables().size(), 3u);
  EXPECT_EQ(DataSetBEventTables().size(), 3u);
}

TEST(CareWebTest, InvalidConfigRejected) {
  CareWebConfig config = CareWebConfig::Tiny();
  config.num_teams = 0;
  EXPECT_FALSE(GenerateCareWeb(config).ok());
}

// --------------------------- Workload ---------------------------

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() : data_(UnwrapOrDie(GenerateCareWeb(CareWebConfig::Tiny()))) {}
  CareWebData data_;
};

TEST_F(WorkloadTest, AddLogSliceByDays) {
  // Opt the source log into self-joins to verify allowances are mirrored.
  EBA_ASSERT_OK(data_.db.AllowSelfJoin(AttrId{"Log", "Patient"}));
  LogSlice slice = UnwrapOrDie(
      AddLogSlice(&data_.db, "Log", "TrainLog", 1, 6, /*first_only=*/false));
  ASSERT_TRUE(data_.db.HasTable("TrainLog"));
  const Table* log = data_.db.GetTable("Log").value();
  const Table* train = data_.db.GetTable("TrainLog").value();
  EXPECT_LT(train->num_rows(), log->num_rows());
  EXPECT_EQ(slice.lids.size(), train->num_rows());
  // Self-join allowances mirrored (Patient was allowed on Log, User not).
  EXPECT_TRUE(data_.db.IsSelfJoinAllowed(AttrId{"TrainLog", "Patient"}));
  EXPECT_FALSE(data_.db.IsSelfJoinAllowed(AttrId{"TrainLog", "User"}));

  // Day-7 slice + train slice partition the log.
  LogSlice day7 = UnwrapOrDie(
      AddLogSlice(&data_.db, "Log", "TestLog", 7, 7, /*first_only=*/false));
  EXPECT_EQ(slice.lids.size() + day7.lids.size(), log->num_rows());
}

TEST_F(WorkloadTest, FirstOnlySliceUsesGlobalFirstMask) {
  LogSlice first7 = UnwrapOrDie(
      AddLogSlice(&data_.db, "Log", "FirstD7", 7, 7, /*first_only=*/true));
  // Every lid in the slice must be a global first access.
  const Table* log = data_.db.GetTable("Log").value();
  AccessLog full = UnwrapOrDie(AccessLog::Wrap(log));
  auto firsts = full.FirstAccessLids();
  std::unordered_set<int64_t> first_set(firsts.begin(), firsts.end());
  for (int64_t lid : first7.lids) {
    EXPECT_TRUE(first_set.count(lid));
  }
  // A pair seen on earlier days must not reappear on day 7's first slice.
  std::unordered_set<int64_t> d7(first7.lids.begin(), first7.lids.end());
  auto days = full.DayIndexes();
  for (size_t r = 0; r < full.size(); ++r) {
    if (days[r] == 7 && !first_set.count(full.Get(r).lid)) {
      EXPECT_FALSE(d7.count(full.Get(r).lid));
    }
  }
}

TEST_F(WorkloadTest, ExcludedLogsForFindsAllLogLikeTables) {
  (void)UnwrapOrDie(
      AddLogSlice(&data_.db, "Log", "TrainLog", 1, 6, false));
  auto excluded = ExcludedLogsFor(data_.db, "TrainLog");
  EXPECT_NE(std::find(excluded.begin(), excluded.end(), "Log"),
            excluded.end());
  EXPECT_EQ(std::find(excluded.begin(), excluded.end(), "TrainLog"),
            excluded.end());
}

TEST_F(WorkloadTest, AddEvalLogBuildsCombinedTable) {
  (void)UnwrapOrDie(AddLogSlice(&data_.db, "Log", "TestLog", 7, 7, true));
  EvalLogSetup eval = UnwrapOrDie(
      AddEvalLog(&data_.db, "TestLog", "EvalLog", data_.truth, 99));
  const Table* combined = data_.db.GetTable("EvalLog").value();
  EXPECT_EQ(combined->num_rows(),
            eval.real_lids.size() + eval.fake_lids.size());
  EXPECT_EQ(eval.real_lids.size(), eval.fake_lids.size());
}

TEST_F(WorkloadTest, BuildGroupsFromDaysMaterializesTable) {
  GroupHierarchy h = UnwrapOrDie(BuildGroupsFromDays(
      &data_.db, "Log", 1, 6, "Groups", HierarchyOptions{}));
  ASSERT_TRUE(data_.db.HasTable("Groups"));
  EXPECT_TRUE(data_.db.IsSelfJoinAllowed(AttrId{"Groups", "Group_id"}));
  EXPECT_GE(h.max_depth(), 1);
  // Depth 1 should find several collaborative groups.
  EXPECT_GE(h.GroupsAtDepth(1).size(), 2u);
}

TEST_F(WorkloadTest, GroupsRecoverTeamStructure) {
  GroupHierarchy h = UnwrapOrDie(BuildGroupsFromDays(
      &data_.db, "Log", 1, 6, "Groups", HierarchyOptions{}));
  // For most pairs of users in the same ground-truth team, the depth-1
  // clustering should put them together.
  size_t same = 0, total = 0;
  for (const auto& team : data_.truth.teams) {
    for (size_t i = 0; i < team.members.size(); ++i) {
      for (size_t j = i + 1; j < team.members.size(); ++j) {
        const GroupNode* gi = h.GroupOf(team.members[i], 1);
        const GroupNode* gj = h.GroupOf(team.members[j], 1);
        if (gi == nullptr || gj == nullptr) continue;
        ++total;
        if (gi->group_id == gj->group_id) ++same;
      }
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(same) / static_cast<double>(total), 0.5);
}

TEST_F(WorkloadTest, HandcraftedTemplatesParse) {
  (void)UnwrapOrDie(BuildGroupsFromDays(&data_.db, "Log", 1, 6, "Groups",
                                        HierarchyOptions{}));
  EXPECT_TRUE(TemplateApptWithDoctor(data_.db).ok());
  EXPECT_TRUE(TemplateVisitWithDoctor(data_.db).ok());
  EXPECT_TRUE(TemplateVisitWithAttending(data_.db).ok());
  EXPECT_TRUE(TemplateDocumentWithAuthor(data_.db).ok());
  EXPECT_TRUE(TemplateRepeatAccess(data_.db).ok());
  EXPECT_EQ(UnwrapOrDie(TemplatesDataSetB(data_.db)).size(), 7u);
  EXPECT_EQ(UnwrapOrDie(TemplatesGroups(data_.db, 1, true)).size(), 6u);
  EXPECT_EQ(UnwrapOrDie(TemplatesGroups(data_.db, -1, false)).size(), 3u);
  EXPECT_EQ(UnwrapOrDie(TemplatesSameDepartment(data_.db)).size(), 3u);
  EXPECT_EQ(UnwrapOrDie(TemplatesHandcraftedDirect(data_.db, true)).size(),
            5u);
}

TEST_F(WorkloadTest, DataSetBTemplatesHaveMappingAdjustedLength) {
  ExplanationTemplate lab =
      UnwrapOrDie(TemplatesDataSetB(data_.db))[1];  // lab_resulted_by
  EXPECT_EQ(lab.RawLength(), 3);
  EXPECT_EQ(lab.ReportedLength(data_.db), 2);
  EXPECT_EQ(lab.CountedTables(data_.db), 2);  // Log + Labs (UserMap exempt)
}

}  // namespace
}  // namespace eba
