// Streaming ingest suite: ExplainNew must equal a full ExplainAll
// restricted to the new lids at every watermark, the persistent explained
// set must converge to the full report's, appends must keep the plan cache
// hot (rebinds, not invalidations), and non-append drift must force a full
// re-audit. Storage-level pieces (incremental index/stats extension) are
// covered in storage_test.cc.

#include "core/ingest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "careweb/generator.h"
#include "careweb/workload.h"
#include "common/date.h"
#include "core/auditor.h"
#include "core/engine.h"
#include "log/access_log.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::BuildPaperToyDatabase;
using testing_util::UnwrapOrDie;

/// A streaming fixture over the generated hospital: the "LogStream" table
/// starts with the rows of days [1, seed_days] and the remaining rows are
/// returned as the append backlog, in row order.
struct StreamingFixture {
  CareWebData data;
  std::vector<Row> backlog;
  std::vector<ExplanationTemplate> templates;
};

StreamingFixture MakeFixture(int seed_days) {
  StreamingFixture f;
  f.data = UnwrapOrDie(GenerateCareWeb(CareWebConfig::Tiny()));
  const Table* log = UnwrapOrDie(f.data.db.GetTable("Log"));
  AccessLog access_log = UnwrapOrDie(AccessLog::Wrap(log));
  (void)UnwrapOrDie(AddLogSlice(&f.data.db, "Log", "LogStream", 1, seed_days,
                                /*first_only=*/false));
  std::unordered_set<size_t> seeded;
  for (size_t r : access_log.RowsInDayRange(1, seed_days)) seeded.insert(r);
  for (size_t r = 0; r < log->num_rows(); ++r) {
    if (!seeded.count(r)) f.backlog.push_back(log->GetRow(r));
  }
  f.templates = UnwrapOrDie(TemplatesHandcraftedDirect(f.data.db, true));
  return f;
}

StreamingAuditor MakeAuditor(StreamingFixture* f) {
  StreamingAuditor auditor =
      UnwrapOrDie(StreamingAuditor::Create(&f->data.db, "LogStream"));
  for (const auto& tmpl : f->templates) {
    const Status s = auditor.AddTemplate(tmpl);
    EBA_CHECK_MSG(s.ok(), s.ToString());  // value-returning helper: no ASSERT
  }
  return auditor;
}

/// The oracle: a full ExplainAll over the current LogStream, restricted to
/// `lids`.
struct RestrictedReport {
  std::vector<int64_t> explained;
  std::vector<int64_t> unexplained;
};

RestrictedReport FullReportRestrictedTo(const StreamingAuditor& auditor,
                                        const std::vector<int64_t>& lids) {
  const ExplanationReport full =
      UnwrapOrDie(auditor.engine().ExplainAll());
  std::unordered_set<int64_t> explained(full.explained_lids.begin(),
                                        full.explained_lids.end());
  RestrictedReport out;
  for (int64_t lid : lids) {
    if (explained.count(lid)) {
      out.explained.push_back(lid);
    } else {
      out.unexplained.push_back(lid);
    }
  }
  std::sort(out.explained.begin(), out.explained.end());
  std::sort(out.unexplained.begin(), out.unexplained.end());
  return out;
}

std::vector<int64_t> LidsOf(const std::vector<Row>& rows, int lid_col) {
  std::vector<int64_t> lids;
  lids.reserve(rows.size());
  for (const Row& row : rows) {
    lids.push_back(row[static_cast<size_t>(lid_col)].AsInt64());
  }
  return lids;
}

TEST(StreamingAuditorTest, ExplainNewMatchesFullExplainAllRestrictedToNewLids) {
  StreamingFixture f = MakeFixture(/*seed_days=*/4);
  StreamingAuditor auditor = MakeAuditor(&f);
  ASSERT_FALSE(f.backlog.empty());
  const Table* stream = UnwrapOrDie(
      static_cast<const Database&>(f.data.db).GetTable("LogStream"));
  const int lid_col = stream->schema().ColumnIndex("Lid");

  // First audit covers the seeded prefix.
  const size_t seed_rows = stream->num_rows();
  const StreamingReport first = UnwrapOrDie(auditor.ExplainNew());
  EXPECT_EQ(first.audited_from, 0u);
  EXPECT_EQ(first.audited_to, seed_rows);
  const ExplanationReport seed_full =
      UnwrapOrDie(auditor.engine().ExplainAll());
  EXPECT_EQ(first.explained_lids, seed_full.explained_lids);
  EXPECT_EQ(first.unexplained_lids, seed_full.unexplained_lids);
  EXPECT_EQ(first.per_template_counts, seed_full.per_template_counts);

  // Stream the backlog in three batches; every incremental report must
  // equal the full report restricted to that batch's lids.
  const size_t batch_size = (f.backlog.size() + 2) / 3;
  for (size_t start = 0; start < f.backlog.size(); start += batch_size) {
    const size_t end = std::min(start + batch_size, f.backlog.size());
    const std::vector<Row> batch(f.backlog.begin() + start,
                                 f.backlog.begin() + end);
    EBA_ASSERT_OK(auditor.AppendAccessBatch(batch));
    const StreamingReport report = UnwrapOrDie(auditor.ExplainNew());
    EXPECT_FALSE(report.full_reaudit);
    EXPECT_EQ(report.new_rows(), batch.size());
    const RestrictedReport oracle =
        FullReportRestrictedTo(auditor, LidsOf(batch, lid_col));
    EXPECT_EQ(report.explained_lids, oracle.explained);
    EXPECT_EQ(report.unexplained_lids, oracle.unexplained);
  }

  // The accumulated explained set equals the full report's.
  const ExplanationReport final_full =
      UnwrapOrDie(auditor.engine().ExplainAll());
  std::unordered_set<int64_t> full_set(final_full.explained_lids.begin(),
                                       final_full.explained_lids.end());
  EXPECT_TRUE(auditor.ExplainedSetEquals(full_set));
  EXPECT_EQ(auditor.explained_count(), full_set.size());
  EXPECT_EQ(auditor.audited_rows(), stream->num_rows());
  EXPECT_EQ(auditor.rows_appended(), f.backlog.size());
}

TEST(StreamingAuditorTest, ExplainNewIsDeterministicAcrossThreadCounts) {
  StreamingFixture f1 = MakeFixture(/*seed_days=*/4);
  StreamingFixture f2 = MakeFixture(/*seed_days=*/4);
  StreamingAuditor serial = MakeAuditor(&f1);
  StreamingAuditor parallel = MakeAuditor(&f2);
  StreamingOptions par_options;
  par_options.num_threads = 4;
  par_options.min_rows_per_shard = 1;
  par_options.executor.min_rows_per_morsel = 1;

  (void)UnwrapOrDie(serial.ExplainNew());
  (void)UnwrapOrDie(parallel.ExplainNew(par_options));
  const size_t batch = (f1.backlog.size() + 1) / 2;
  for (size_t start = 0; start < f1.backlog.size(); start += batch) {
    const size_t end = std::min(start + batch, f1.backlog.size());
    const std::vector<Row> rows(f1.backlog.begin() + start,
                                f1.backlog.begin() + end);
    EBA_ASSERT_OK(serial.AppendAccessBatch(rows));
    EBA_ASSERT_OK(parallel.AppendAccessBatch(rows));
    const StreamingReport a = UnwrapOrDie(serial.ExplainNew());
    const StreamingReport b = UnwrapOrDie(parallel.ExplainNew(par_options));
    EXPECT_EQ(a.explained_lids, b.explained_lids);
    EXPECT_EQ(a.unexplained_lids, b.unexplained_lids);
    EXPECT_EQ(a.per_template_counts, b.per_template_counts);
  }
}

TEST(StreamingAuditorTest, AppendsKeepThePlanCacheHot) {
  StreamingFixture f = MakeFixture(/*seed_days=*/4);
  StreamingAuditor auditor = MakeAuditor(&f);
  (void)UnwrapOrDie(auditor.ExplainNew());
  const PlanCache::Stats cold = auditor.engine().plan_cache()->stats();
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_EQ(cold.misses, f.templates.size());

  // Interleave appends and audits: every subsequent template evaluation
  // must re-bind and replay — zero additional misses or invalidations.
  // Log appends additionally run the self-join reverse pass for the one
  // template that references the log at a non-zero variable
  // (repeat_access), which compiles exactly one extra pivot plan on its
  // first appended audit and replays it afterwards.
  const size_t kBatches = 10;
  const size_t batch = (f.backlog.size() + kBatches - 1) / kBatches;
  size_t audits = 0;
  StreamingReport last;
  for (size_t start = 0; start < f.backlog.size(); start += batch) {
    const size_t end = std::min(start + batch, f.backlog.size());
    EBA_ASSERT_OK(auditor.AppendAccessBatch(std::vector<Row>(
        f.backlog.begin() + start, f.backlog.begin() + end)));
    last = UnwrapOrDie(auditor.ExplainNew());
    ++audits;
  }
  const size_t plans = f.templates.size() + 1;  // + repeat_access pivot plan
  const PlanCache::Stats hot = auditor.engine().plan_cache()->stats();
  EXPECT_EQ(hot.misses, plans);
  EXPECT_EQ(hot.invalidations, 0u);
  EXPECT_EQ(hot.hits, audits * plans - 1);
  EXPECT_GT(hot.rebinds, 0u);
  const double hit_rate = static_cast<double>(hot.hits) /
                          static_cast<double>(hot.hits + hot.misses);
  EXPECT_GE(hit_rate, 0.9);

  // The report mirrors the cache totals for library callers (the bench
  // previously had these numbers; the API did not).
  EXPECT_EQ(last.plan_cache_hits, hot.hits);
  EXPECT_EQ(last.plan_cache_misses, hot.misses);
  EXPECT_EQ(last.plan_rebinds, hot.rebinds);
  EXPECT_GT(last.plan_rebinds, 0u);
}

/// A toy fixture with the appointment template registered and the seed log
/// audited: lid 1 explained, lid 2 unexplained.
struct ToyAuditor {
  Database db;
  std::unique_ptr<StreamingAuditor> auditor;
};

ToyAuditor MakeToyAuditor() {
  ToyAuditor t;
  t.db = BuildPaperToyDatabase();
  t.auditor = std::make_unique<StreamingAuditor>(
      UnwrapOrDie(StreamingAuditor::Create(&t.db, "Log")));
  ExplanationTemplate tmpl = UnwrapOrDie(ExplanationTemplate::Parse(
      t.db, "appt", "Log L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User",
      "[L.Patient] had an appointment with [L.User]"));
  const Status s = t.auditor->AddTemplate(tmpl);
  EBA_CHECK_MSG(s.ok(), s.ToString());
  return t;
}

TEST(StreamingAuditorTest, ForeignTableAppendTakesDeltaPassNotFullReaudit) {
  ToyAuditor t = MakeToyAuditor();
  const StreamingReport first = UnwrapOrDie(t.auditor->ExplainNew());
  EXPECT_EQ(first.explained_lids, (std::vector<int64_t>{1}));
  EXPECT_EQ(first.unexplained_lids, (std::vector<int64_t>{2}));
  EXPECT_EQ(first.delta_tables, 0u);

  // An appointment appended to a *non-log* table newly explains the
  // already-audited access L2. The happy path is the reverse semi-join
  // delta pass — NOT a full re-audit.
  EBA_ASSERT_OK(t.auditor->AppendRows(
      "Appointments",
      {{Value::Int64(testing_util::kBob),
        Value::Timestamp(Date::FromCivil(2010, 2, 2, 9, 0, 0).ToSeconds()),
        Value::Int64(testing_util::kDave)}}));
  EXPECT_EQ(t.auditor->foreign_rows_appended(), 1u);

  const StreamingReport second = UnwrapOrDie(t.auditor->ExplainNew());
  EXPECT_FALSE(second.full_reaudit);
  EXPECT_EQ(second.new_rows(), 0u);  // no new log rows
  EXPECT_EQ(second.delta_tables, 1u);
  EXPECT_EQ(second.delta_queries, 1u);
  EXPECT_EQ(second.delta_explained_lids, (std::vector<int64_t>{2}));
  EXPECT_EQ(second.per_template_delta_counts, (std::vector<size_t>{1}));
  EXPECT_TRUE(second.explained_lids.empty());
  EXPECT_TRUE(second.unexplained_lids.empty());
  EXPECT_TRUE(t.auditor->IsExplained(2));

  // With no further changes the next audit is incremental and empty.
  const StreamingReport third = UnwrapOrDie(t.auditor->ExplainNew());
  EXPECT_FALSE(third.full_reaudit);
  EXPECT_EQ(third.new_rows(), 0u);
  EXPECT_EQ(third.delta_tables, 0u);
}

TEST(StreamingAuditorTest, GroupExtensionIsAppendOnlyDriftNotRebuild) {
  Database db = BuildPaperToyDatabase();

  // The batch facade owns the hierarchy; build it from the seed log, where
  // only Dave appears — the lone depth-1 group is {Dave}.
  Auditor batch = UnwrapOrDie(Auditor::Create(&db));
  EBA_ASSERT_OK(batch.BuildCollaborativeGroups());

  StreamingAuditor auditor =
      UnwrapOrDie(StreamingAuditor::Create(&db, "Log"));
  ExplanationTemplate tmpl = UnwrapOrDie(ExplanationTemplate::Parse(
      db, "group", "Log L, Appointments A, Groups G1, Groups G2",
      "L.Patient = A.Patient AND A.Doctor = G1.User AND "
      "G1.Group_id = G2.Group_id AND G2.User = L.User",
      "[L.User] collaborates with [L.Patient]'s doctor"));
  EBA_ASSERT_OK(auditor.AddTemplate(tmpl));

  // L1 (Dave views Alice, doctor Dave): explained through Dave's own group.
  // L2 (Dave views Bob, doctor Mike): Mike is not grouped yet.
  const StreamingReport first = UnwrapOrDie(auditor.ExplainNew());
  EXPECT_EQ(first.explained_lids, (std::vector<int64_t>{1}));
  EXPECT_EQ(first.unexplained_lids, (std::vector<int64_t>{2}));

  // Mike starts using the system: he opens Alice's record. The co-access
  // with Dave ties them in the collaboration graph, but the access itself
  // stays unexplained for now.
  const int64_t t3 = Date::FromCivil(2010, 3, 3, 9, 0, 0).ToSeconds();
  EBA_ASSERT_OK(auditor.AppendAccessBatch(
      {{Value::Int64(3), Value::Timestamp(t3), Value::Int64(testing_util::kMike),
        Value::Int64(testing_util::kAlice), Value::String("viewed record")}}));
  const StreamingReport second = UnwrapOrDie(auditor.ExplainNew());
  EXPECT_FALSE(second.full_reaudit);
  EXPECT_EQ(second.unexplained_lids, (std::vector<int64_t>{3}));

  // Fold Mike into the existing hierarchy. This APPENDS membership rows to
  // Groups — no drop/rebuild — so the catalog generation must not move.
  const Table* groups =
      UnwrapOrDie(static_cast<const Database&>(db).GetTable("Groups"));
  const size_t groups_before = groups->num_rows();
  const uint64_t generation = db.catalog_generation();
  const size_t appended = UnwrapOrDie(batch.ExtendCollaborativeGroups());
  EXPECT_GE(appended, 1u);
  EXPECT_EQ(groups->num_rows(), groups_before + appended);
  EXPECT_EQ(db.catalog_generation(), generation);

  // The next audit absorbs the group change as append-only drift: both old
  // unexplained accesses flip in the delta pass. L2 joins through the new
  // row at the G1 position, L3 through the same row at the G2 position —
  // the pass must seed every Groups occurrence in the template.
  const StreamingReport third = UnwrapOrDie(auditor.ExplainNew());
  EXPECT_FALSE(third.full_reaudit);
  EXPECT_EQ(third.new_rows(), 0u);
  EXPECT_GE(third.delta_tables, 1u);
  EXPECT_EQ(third.delta_explained_lids, (std::vector<int64_t>{2, 3}));
  EXPECT_TRUE(auditor.IsExplained(2));
  EXPECT_TRUE(auditor.IsExplained(3));

  // Idempotent: a second extension finds nobody new and changes nothing.
  EXPECT_EQ(UnwrapOrDie(batch.ExtendCollaborativeGroups()), size_t{0});
  const StreamingReport fourth = UnwrapOrDie(auditor.ExplainNew());
  EXPECT_FALSE(fourth.full_reaudit);
  EXPECT_EQ(fourth.delta_tables, 0u);
}

TEST(StreamingAuditorTest, StructuralMutationStillForcesFullReaudit) {
  ToyAuditor t = MakeToyAuditor();
  (void)UnwrapOrDie(t.auditor->ExplainNew());
  EXPECT_TRUE(t.auditor->IsExplained(1));

  // A structural mutation (may rewrite cells in place) breaks the
  // monotone-append invariant: the next audit starts over.
  t.db.GetTable("Appointments").value()->InvalidateDerivedState();
  const StreamingReport report = UnwrapOrDie(t.auditor->ExplainNew());
  EXPECT_TRUE(report.full_reaudit);
  EXPECT_EQ(report.audited_from, 0u);
  EXPECT_EQ(report.explained_lids, (std::vector<int64_t>{1}));
  EXPECT_EQ(report.unexplained_lids, (std::vector<int64_t>{2}));
  EXPECT_TRUE(report.delta_explained_lids.empty());
}

TEST(StreamingAuditorTest, EmptyAppendBatchesAreFreeAndDriftless) {
  ToyAuditor t = MakeToyAuditor();
  (void)UnwrapOrDie(t.auditor->ExplainNew());
  const PlanCache::Stats before = t.auditor->engine().plan_cache()->stats();

  EBA_ASSERT_OK(t.auditor->AppendAccessBatch({}));
  EBA_ASSERT_OK(t.auditor->AppendRows("Appointments", {}));
  EXPECT_EQ(t.auditor->foreign_rows_appended(), 0u);

  const StreamingReport report = UnwrapOrDie(t.auditor->ExplainNew());
  EXPECT_FALSE(report.full_reaudit);
  EXPECT_EQ(report.new_rows(), 0u);
  EXPECT_EQ(report.delta_tables, 0u);
  EXPECT_EQ(report.delta_queries, 0u);
  EXPECT_TRUE(report.delta_explained_lids.empty());
  // No template was evaluated: the cache counters did not move at all.
  const PlanCache::Stats after = t.auditor->engine().plan_cache()->stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
}

TEST(StreamingAuditorTest, ForeignAppendExplainingZeroNewLids) {
  ToyAuditor t = MakeToyAuditor();
  (void)UnwrapOrDie(t.auditor->ExplainNew());

  // An appointment for a patient nobody accessed: joinable to nothing.
  EBA_ASSERT_OK(t.auditor->AppendRows(
      "Appointments",
      {{Value::Int64(999),
        Value::Timestamp(Date::FromCivil(2010, 3, 3, 9, 0, 0).ToSeconds()),
        Value::Int64(998)}}));
  const StreamingReport report = UnwrapOrDie(t.auditor->ExplainNew());
  EXPECT_FALSE(report.full_reaudit);
  EXPECT_EQ(report.delta_tables, 1u);
  EXPECT_EQ(report.delta_queries, 1u);
  EXPECT_TRUE(report.delta_explained_lids.empty());
  EXPECT_EQ(report.per_template_delta_counts, (std::vector<size_t>{0}));
}

TEST(StreamingAuditorTest, ForeignAppendJoinableToExplainedLidDoesNotDoubleCount) {
  ToyAuditor t = MakeToyAuditor();
  (void)UnwrapOrDie(t.auditor->ExplainNew());
  EXPECT_TRUE(t.auditor->IsExplained(1));

  // A second appointment witnessing the ALREADY-explained lid 1: the delta
  // pass finds it joinable but must not re-report or double-insert it.
  EBA_ASSERT_OK(t.auditor->AppendRows(
      "Appointments",
      {{Value::Int64(testing_util::kAlice),
        Value::Timestamp(Date::FromCivil(2010, 1, 1, 10, 0, 0).ToSeconds()),
        Value::Int64(testing_util::kDave)}}));
  const StreamingReport report = UnwrapOrDie(t.auditor->ExplainNew());
  EXPECT_FALSE(report.full_reaudit);
  EXPECT_EQ(report.delta_queries, 1u);
  EXPECT_TRUE(report.delta_explained_lids.empty());
  EXPECT_EQ(report.per_template_delta_counts, (std::vector<size_t>{0}));
  EXPECT_TRUE(t.auditor->IsExplained(1));
  EXPECT_FALSE(t.auditor->IsExplained(2));
}

TEST(StreamingAuditorTest, ResetFollowedByMixedAppends) {
  ToyAuditor t = MakeToyAuditor();
  (void)UnwrapOrDie(t.auditor->ExplainNew());
  t.auditor->ResetAudit();
  EXPECT_EQ(t.auditor->audited_rows(), 0u);
  EXPECT_EQ(t.auditor->explained_count(), 0u);

  // Mixed appends against the reset state: a foreign row explaining lid 2
  // and a fresh log access (lid 3, Alice by Dave — explained by the
  // original appointment). The audit after a reset covers everything via
  // the full new-lid pass; the delta pass is skipped (nothing audited yet)
  // and nothing is lost or double-counted.
  EBA_ASSERT_OK(t.auditor->AppendRows(
      "Appointments",
      {{Value::Int64(testing_util::kBob),
        Value::Timestamp(Date::FromCivil(2010, 2, 2, 9, 0, 0).ToSeconds()),
        Value::Int64(testing_util::kDave)}}));
  const int64_t mar1 = Date::FromCivil(2010, 3, 1, 9, 0, 0).ToSeconds();
  EBA_ASSERT_OK(t.auditor->AppendAccessBatch(
      {{Value::Int64(3), Value::Timestamp(mar1),
        Value::Int64(testing_util::kDave), Value::Int64(testing_util::kAlice),
        Value::String("viewed record")}}));

  const StreamingReport report = UnwrapOrDie(t.auditor->ExplainNew());
  EXPECT_FALSE(report.full_reaudit);  // an explicit Reset is not drift
  EXPECT_EQ(report.audited_from, 0u);
  EXPECT_EQ(report.new_rows(), 3u);
  EXPECT_EQ(report.delta_queries, 0u);  // nothing audited before this pass
  EXPECT_EQ(report.explained_lids, (std::vector<int64_t>{1, 2, 3}));
  EXPECT_TRUE(report.unexplained_lids.empty());
  EXPECT_TRUE(report.delta_explained_lids.empty());
}

TEST(StreamingAuditorTest, DeltaPassDeduplicatesLidsAcrossTemplates) {
  ToyAuditor t = MakeToyAuditor();
  // A second template over the same foreign table: appointment on the same
  // DAY (coarser than the exact-witness template, still explains lid 2
  // once the new appointment lands).
  ExplanationTemplate by_doctor = UnwrapOrDie(ExplanationTemplate::Parse(
      t.db, "appt_any", "Log L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User AND L.Date >= A.Date",
      "[L.Patient] had an appointment"));
  EBA_ASSERT_OK(t.auditor->AddTemplate(by_doctor));
  (void)UnwrapOrDie(t.auditor->ExplainNew());
  EXPECT_FALSE(t.auditor->IsExplained(2));

  EBA_ASSERT_OK(t.auditor->AppendRows(
      "Appointments",
      {{Value::Int64(testing_util::kBob),
        Value::Timestamp(Date::FromCivil(2010, 2, 2, 9, 0, 0).ToSeconds()),
        Value::Int64(testing_util::kDave)}}));
  const StreamingReport report = UnwrapOrDie(t.auditor->ExplainNew());
  // Both templates newly explain lid 2; the union reports it exactly once
  // while the per-template counts see it twice.
  EXPECT_EQ(report.delta_queries, 2u);
  EXPECT_EQ(report.delta_explained_lids, (std::vector<int64_t>{2}));
  EXPECT_EQ(report.per_template_delta_counts, (std::vector<size_t>{1, 1}));
  EXPECT_TRUE(t.auditor->IsExplained(2));
}

TEST(StreamingAuditorTest, LateArrivingLogRowExplainsOldAccessViaSelfJoin) {
  Database db = BuildPaperToyDatabase();
  StreamingAuditor auditor =
      UnwrapOrDie(StreamingAuditor::Create(&db, "Log"));
  ExplanationTemplate repeat = UnwrapOrDie(ExplanationTemplate::Parse(
      db, "repeat", "Log L, Log L2",
      "L.Patient = L2.Patient AND L2.User = L.User AND L.Date > L2.Date",
      "[L.User] previously accessed [L.Patient]'s record"));
  EBA_ASSERT_OK(auditor.AddTemplate(repeat));

  const StreamingReport first = UnwrapOrDie(auditor.ExplainNew());
  EXPECT_TRUE(first.explained_lids.empty());  // no earlier accesses exist

  // A late-arriving log row dated BEFORE the audited L1: it newly explains
  // L1 through the self-join's L2 side. The log-append delta pass (reverse
  // semi-join over the log at variable 1) must catch this retroactive
  // explanation; the plain new-lid pass alone would miss it.
  const int64_t before_l1 = Date::FromCivil(2010, 1, 1, 8, 0, 0).ToSeconds();
  EBA_ASSERT_OK(auditor.AppendAccessBatch(
      {{Value::Int64(3), Value::Timestamp(before_l1),
        Value::Int64(testing_util::kDave), Value::Int64(testing_util::kAlice),
        Value::String("viewed record")}}));
  const StreamingReport second = UnwrapOrDie(auditor.ExplainNew());
  EXPECT_FALSE(second.full_reaudit);
  EXPECT_EQ(second.delta_tables, 0u);   // the log is not a foreign table
  EXPECT_EQ(second.delta_queries, 1u);  // ...but its self-join position runs
  EXPECT_EQ(second.delta_explained_lids, (std::vector<int64_t>{1}));
  EXPECT_EQ(second.unexplained_lids, (std::vector<int64_t>{3}));
  EXPECT_TRUE(auditor.IsExplained(1));

  // The streamed state now matches a fresh full audit exactly.
  const ExplanationReport full = UnwrapOrDie(auditor.engine().ExplainAll());
  std::unordered_set<int64_t> full_set(full.explained_lids.begin(),
                                       full.explained_lids.end());
  EXPECT_TRUE(auditor.ExplainedSetEquals(full_set));
}

TEST(StreamingAuditorTest, EmptyAuditAndBadBatchRows) {
  Database db = BuildPaperToyDatabase();
  StreamingAuditor auditor =
      UnwrapOrDie(StreamingAuditor::Create(&db, "Log"));
  const StreamingReport empty = UnwrapOrDie(auditor.ExplainNew());
  EXPECT_EQ(empty.new_rows(), 2u);  // the toy log's seed rows
  const StreamingReport none = UnwrapOrDie(auditor.ExplainNew());
  EXPECT_EQ(none.new_rows(), 0u);
  EXPECT_TRUE(none.explained_lids.empty());
  EXPECT_TRUE(none.unexplained_lids.empty());

  // Arity mismatch is rejected.
  EXPECT_FALSE(auditor.AppendAccessBatch({Row{Value::Int64(9)}}).ok());
}

}  // namespace
}  // namespace eba
