// Streaming ingest suite: ExplainNew must equal a full ExplainAll
// restricted to the new lids at every watermark, the persistent explained
// set must converge to the full report's, appends must keep the plan cache
// hot (rebinds, not invalidations), and non-append drift must force a full
// re-audit. Storage-level pieces (incremental index/stats extension) are
// covered in storage_test.cc.

#include "core/ingest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "careweb/generator.h"
#include "careweb/workload.h"
#include "common/date.h"
#include "core/engine.h"
#include "log/access_log.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::BuildPaperToyDatabase;
using testing_util::UnwrapOrDie;

/// A streaming fixture over the generated hospital: the "LogStream" table
/// starts with the rows of days [1, seed_days] and the remaining rows are
/// returned as the append backlog, in row order.
struct StreamingFixture {
  CareWebData data;
  std::vector<Row> backlog;
  std::vector<ExplanationTemplate> templates;
};

StreamingFixture MakeFixture(int seed_days) {
  StreamingFixture f;
  f.data = UnwrapOrDie(GenerateCareWeb(CareWebConfig::Tiny()));
  const Table* log = UnwrapOrDie(f.data.db.GetTable("Log"));
  AccessLog access_log = UnwrapOrDie(AccessLog::Wrap(log));
  (void)UnwrapOrDie(AddLogSlice(&f.data.db, "Log", "LogStream", 1, seed_days,
                                /*first_only=*/false));
  std::unordered_set<size_t> seeded;
  for (size_t r : access_log.RowsInDayRange(1, seed_days)) seeded.insert(r);
  for (size_t r = 0; r < log->num_rows(); ++r) {
    if (!seeded.count(r)) f.backlog.push_back(log->GetRow(r));
  }
  f.templates = UnwrapOrDie(TemplatesHandcraftedDirect(f.data.db, true));
  return f;
}

StreamingAuditor MakeAuditor(StreamingFixture* f) {
  StreamingAuditor auditor =
      UnwrapOrDie(StreamingAuditor::Create(&f->data.db, "LogStream"));
  for (const auto& tmpl : f->templates) {
    const Status s = auditor.AddTemplate(tmpl);
    EBA_CHECK_MSG(s.ok(), s.ToString());  // value-returning helper: no ASSERT
  }
  return auditor;
}

/// The oracle: a full ExplainAll over the current LogStream, restricted to
/// `lids`.
struct RestrictedReport {
  std::vector<int64_t> explained;
  std::vector<int64_t> unexplained;
};

RestrictedReport FullReportRestrictedTo(const StreamingAuditor& auditor,
                                        const std::vector<int64_t>& lids) {
  const ExplanationReport full =
      UnwrapOrDie(auditor.engine().ExplainAll());
  std::unordered_set<int64_t> explained(full.explained_lids.begin(),
                                        full.explained_lids.end());
  RestrictedReport out;
  for (int64_t lid : lids) {
    if (explained.count(lid)) {
      out.explained.push_back(lid);
    } else {
      out.unexplained.push_back(lid);
    }
  }
  std::sort(out.explained.begin(), out.explained.end());
  std::sort(out.unexplained.begin(), out.unexplained.end());
  return out;
}

std::vector<int64_t> LidsOf(const std::vector<Row>& rows, int lid_col) {
  std::vector<int64_t> lids;
  lids.reserve(rows.size());
  for (const Row& row : rows) {
    lids.push_back(row[static_cast<size_t>(lid_col)].AsInt64());
  }
  return lids;
}

TEST(StreamingAuditorTest, ExplainNewMatchesFullExplainAllRestrictedToNewLids) {
  StreamingFixture f = MakeFixture(/*seed_days=*/4);
  StreamingAuditor auditor = MakeAuditor(&f);
  ASSERT_FALSE(f.backlog.empty());
  const Table* stream = UnwrapOrDie(
      static_cast<const Database&>(f.data.db).GetTable("LogStream"));
  const int lid_col = stream->schema().ColumnIndex("Lid");

  // First audit covers the seeded prefix.
  const size_t seed_rows = stream->num_rows();
  const StreamingReport first = UnwrapOrDie(auditor.ExplainNew());
  EXPECT_EQ(first.audited_from, 0u);
  EXPECT_EQ(first.audited_to, seed_rows);
  const ExplanationReport seed_full =
      UnwrapOrDie(auditor.engine().ExplainAll());
  EXPECT_EQ(first.explained_lids, seed_full.explained_lids);
  EXPECT_EQ(first.unexplained_lids, seed_full.unexplained_lids);
  EXPECT_EQ(first.per_template_counts, seed_full.per_template_counts);

  // Stream the backlog in three batches; every incremental report must
  // equal the full report restricted to that batch's lids.
  const size_t batch_size = (f.backlog.size() + 2) / 3;
  for (size_t start = 0; start < f.backlog.size(); start += batch_size) {
    const size_t end = std::min(start + batch_size, f.backlog.size());
    const std::vector<Row> batch(f.backlog.begin() + start,
                                 f.backlog.begin() + end);
    EBA_ASSERT_OK(auditor.AppendAccessBatch(batch));
    const StreamingReport report = UnwrapOrDie(auditor.ExplainNew());
    EXPECT_FALSE(report.full_reaudit);
    EXPECT_EQ(report.new_rows(), batch.size());
    const RestrictedReport oracle =
        FullReportRestrictedTo(auditor, LidsOf(batch, lid_col));
    EXPECT_EQ(report.explained_lids, oracle.explained);
    EXPECT_EQ(report.unexplained_lids, oracle.unexplained);
  }

  // The accumulated explained set equals the full report's.
  const ExplanationReport final_full =
      UnwrapOrDie(auditor.engine().ExplainAll());
  std::unordered_set<int64_t> full_set(final_full.explained_lids.begin(),
                                       final_full.explained_lids.end());
  EXPECT_EQ(auditor.explained_lids(), full_set);
  EXPECT_EQ(auditor.audited_rows(), stream->num_rows());
  EXPECT_EQ(auditor.rows_appended(), f.backlog.size());
}

TEST(StreamingAuditorTest, ExplainNewIsDeterministicAcrossThreadCounts) {
  StreamingFixture f1 = MakeFixture(/*seed_days=*/4);
  StreamingFixture f2 = MakeFixture(/*seed_days=*/4);
  StreamingAuditor serial = MakeAuditor(&f1);
  StreamingAuditor parallel = MakeAuditor(&f2);
  StreamingOptions par_options;
  par_options.num_threads = 4;
  par_options.min_rows_per_shard = 1;
  par_options.executor.min_rows_per_morsel = 1;

  (void)UnwrapOrDie(serial.ExplainNew());
  (void)UnwrapOrDie(parallel.ExplainNew(par_options));
  const size_t batch = (f1.backlog.size() + 1) / 2;
  for (size_t start = 0; start < f1.backlog.size(); start += batch) {
    const size_t end = std::min(start + batch, f1.backlog.size());
    const std::vector<Row> rows(f1.backlog.begin() + start,
                                f1.backlog.begin() + end);
    EBA_ASSERT_OK(serial.AppendAccessBatch(rows));
    EBA_ASSERT_OK(parallel.AppendAccessBatch(rows));
    const StreamingReport a = UnwrapOrDie(serial.ExplainNew());
    const StreamingReport b = UnwrapOrDie(parallel.ExplainNew(par_options));
    EXPECT_EQ(a.explained_lids, b.explained_lids);
    EXPECT_EQ(a.unexplained_lids, b.unexplained_lids);
    EXPECT_EQ(a.per_template_counts, b.per_template_counts);
  }
}

TEST(StreamingAuditorTest, AppendsKeepThePlanCacheHot) {
  StreamingFixture f = MakeFixture(/*seed_days=*/4);
  StreamingAuditor auditor = MakeAuditor(&f);
  (void)UnwrapOrDie(auditor.ExplainNew());
  const PlanCache::Stats cold = auditor.engine().plan_cache()->stats();
  EXPECT_EQ(cold.hits, 0u);
  EXPECT_EQ(cold.misses, f.templates.size());

  // Interleave appends and audits: every subsequent template evaluation
  // must re-bind and replay — zero additional misses or invalidations.
  const size_t kBatches = 10;
  const size_t batch = (f.backlog.size() + kBatches - 1) / kBatches;
  size_t audits = 0;
  for (size_t start = 0; start < f.backlog.size(); start += batch) {
    const size_t end = std::min(start + batch, f.backlog.size());
    EBA_ASSERT_OK(auditor.AppendAccessBatch(std::vector<Row>(
        f.backlog.begin() + start, f.backlog.begin() + end)));
    (void)UnwrapOrDie(auditor.ExplainNew());
    ++audits;
  }
  const PlanCache::Stats hot = auditor.engine().plan_cache()->stats();
  EXPECT_EQ(hot.misses, f.templates.size());
  EXPECT_EQ(hot.invalidations, 0u);
  EXPECT_EQ(hot.hits, audits * f.templates.size());
  EXPECT_GT(hot.rebinds, 0u);
  const double hit_rate = static_cast<double>(hot.hits) /
                          static_cast<double>(hot.hits + hot.misses);
  EXPECT_GE(hit_rate, 0.9);
}

TEST(StreamingAuditorTest, ForeignTableMutationForcesFullReaudit) {
  Database db = BuildPaperToyDatabase();
  StreamingAuditor auditor =
      UnwrapOrDie(StreamingAuditor::Create(&db, "Log"));
  // "Patient had an appointment with the accessing user."
  ExplanationTemplate tmpl = UnwrapOrDie(ExplanationTemplate::Parse(
      db, "appt", "Log L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User",
      "[L.Patient] had an appointment with [L.User]"));
  EBA_ASSERT_OK(auditor.AddTemplate(tmpl));

  const StreamingReport first = UnwrapOrDie(auditor.ExplainNew());
  EXPECT_EQ(first.explained_lids, (std::vector<int64_t>{1}));
  EXPECT_EQ(first.unexplained_lids, (std::vector<int64_t>{2}));

  // An appointment appended to a *non-log* table can newly explain an
  // already-audited access (L2): the next audit must start over.
  Table* appt = db.GetTable("Appointments").value();
  EBA_ASSERT_OK(appt->AppendRow(
      {Value::Int64(testing_util::kBob),
       Value::Timestamp(Date::FromCivil(2010, 2, 2, 9, 0, 0).ToSeconds()),
       Value::Int64(testing_util::kDave)}));

  const StreamingReport second = UnwrapOrDie(auditor.ExplainNew());
  EXPECT_TRUE(second.full_reaudit);
  EXPECT_EQ(second.audited_from, 0u);
  EXPECT_EQ(second.explained_lids, (std::vector<int64_t>{1, 2}));
  EXPECT_TRUE(second.unexplained_lids.empty());
  EXPECT_TRUE(auditor.IsExplained(2));

  // With no further changes the next audit is incremental and empty.
  const StreamingReport third = UnwrapOrDie(auditor.ExplainNew());
  EXPECT_FALSE(third.full_reaudit);
  EXPECT_EQ(third.new_rows(), 0u);
}

TEST(StreamingAuditorTest, EmptyAuditAndBadBatchRows) {
  Database db = BuildPaperToyDatabase();
  StreamingAuditor auditor =
      UnwrapOrDie(StreamingAuditor::Create(&db, "Log"));
  const StreamingReport empty = UnwrapOrDie(auditor.ExplainNew());
  EXPECT_EQ(empty.new_rows(), 2u);  // the toy log's seed rows
  const StreamingReport none = UnwrapOrDie(auditor.ExplainNew());
  EXPECT_EQ(none.new_rows(), 0u);
  EXPECT_TRUE(none.explained_lids.empty());
  EXPECT_TRUE(none.unexplained_lids.empty());

  // Arity mismatch is rejected.
  EXPECT_FALSE(auditor.AppendAccessBatch({Row{Value::Int64(9)}}).ok());
}

}  // namespace
}  // namespace eba
