// Concurrency stress suite for the capability-annotated surfaces, written
// to run under the TSAN CI job: ThreadPool destruction while ParallelFor
// callers still have shards in flight, and PlanCache lookup/insert/evict
// hammered from several threads sharing one byte-capped cache. The clang
// thread-safety analysis proves the lock discipline on every path at
// compile time; these tests give TSAN real interleavings of the same
// surfaces so the runtime and compile-time checks cover each other.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "query/executor.h"
#include "query/parser.h"
#include "query/plan_cache.h"
#include "tests/test_util.h"

namespace eba {
namespace {

using testing_util::BuildPaperToyDatabase;
using testing_util::UnwrapOrDie;

// --------------------------- ThreadPool ---------------------------

// Destroying the pool while a ParallelFor caller still has shards running:
// the destructor must block until every queued helper task drained, and the
// caller's ParallelFor must complete every shard exactly once. Destruction
// may only begin once the caller has finished submitting helpers, which is
// guaranteed here by waiting until the caller thread itself is inside a
// shard (ParallelFor submits all helpers before the caller runs any shard).
TEST(ConcurrencyTest, ThreadPoolDestructionWithParallelForInFlight) {
  constexpr size_t kShards = 16;
  auto pool = std::make_unique<ThreadPool>(3);

  std::atomic<bool> caller_in_shard{false};
  std::atomic<bool> release{false};
  std::atomic<size_t> executed{0};
  std::thread::id caller_id;

  std::thread caller([&] {
    caller_id = std::this_thread::get_id();
    ParallelFor(pool.get(), kShards, [&](size_t) {
      if (std::this_thread::get_id() == caller_id) {
        caller_in_shard.store(true);
      }
      while (!release.load()) std::this_thread::yield();
      executed.fetch_add(1);
    });
  });

  while (!caller_in_shard.load()) std::this_thread::yield();
  release.store(true);
  // Races pool teardown against the still-draining helper tasks; the
  // destructor must not return before every claimed shard completed.
  pool.reset();
  caller.join();
  EXPECT_EQ(executed.load(), kShards);
}

// Several caller threads share one pool; the pool is destroyed only after
// every caller thread is observed inside a shard of its own ParallelFor
// (i.e. after all Submits), while most shards are still in flight.
TEST(ConcurrencyTest, ThreadPoolDestructionWithConcurrentCallers) {
  constexpr size_t kCallers = 4;
  constexpr size_t kShards = 8;
  auto pool = std::make_unique<ThreadPool>(3);

  std::atomic<bool> release{false};
  std::atomic<size_t> executed{0};
  std::vector<std::atomic<bool>> caller_in_shard(kCallers);
  std::vector<std::thread::id> caller_ids(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      caller_ids[c] = std::this_thread::get_id();
      ParallelFor(pool.get(), kShards, [&, c](size_t) {
        if (std::this_thread::get_id() == caller_ids[c]) {
          caller_in_shard[c].store(true);
        }
        while (!release.load()) std::this_thread::yield();
        executed.fetch_add(1);
      });
    });
  }

  for (size_t c = 0; c < kCallers; ++c) {
    while (!caller_in_shard[c].load()) std::this_thread::yield();
  }
  release.store(true);
  pool.reset();
  for (auto& t : callers) t.join();
  EXPECT_EQ(executed.load(), kCallers * kShards);
}

// Wait() from one thread while other threads keep submitting: Wait must
// return only at a moment when every task submitted so far had finished.
TEST(ConcurrencyTest, ThreadPoolWaitDrainsConcurrentSubmitters) {
  ThreadPool pool(2);
  std::atomic<size_t> done{0};
  constexpr size_t kTasks = 64;
  std::thread submitter([&] {
    for (size_t i = 0; i < kTasks; ++i) {
      pool.Submit([&] { done.fetch_add(1); });
    }
  });
  submitter.join();
  pool.Wait();
  EXPECT_EQ(done.load(), kTasks);
}

// --------------------------- PlanCache ---------------------------

/// The Figure 3 toy queries (one plain join, one string-joined self-join
/// chain), the same shapes the determinism suite replays.
std::vector<PathQuery> ToyQueries(const Database& db) {
  std::vector<PathQuery> queries;
  queries.push_back(UnwrapOrDie(ParsePathQuery(
      db, "Log L, Appointments A",
      "L.Patient = A.Patient AND A.Doctor = L.User")));
  queries.push_back(UnwrapOrDie(ParsePathQuery(
      db, "Log L, Appointments A, Doctor_Info I1, Doctor_Info I2",
      "L.Patient = A.Patient AND A.Doctor = I1.Doctor AND "
      "I1.Department = I2.Department AND I2.Doctor = L.User")));
  return queries;
}

// 4 threads hammer one byte-capped PlanCache with interleaved lookups,
// inserts (on miss) and LRU evictions across two query shapes, racing the
// shared-lock stats accessors against the writer path. Every execution must
// still produce the serial no-cache reference result.
TEST(ConcurrencyTest, PlanCacheConcurrentLookupInsertEvict) {
  Database db = BuildPaperToyDatabase();
  const std::vector<PathQuery> queries = ToyQueries(db);
  const QAttr lid_attr{0, 0};

  // Serial reference results, computed without any cache.
  Executor serial(&db);
  std::vector<std::vector<int64_t>> reference;
  for (const PathQuery& q : queries) {
    reference.push_back(UnwrapOrDie(serial.DistinctLids(q, lid_attr)));
  }

  // A cap below any plan's footprint: every insert of one shape evicts the
  // other (only the newest entry is exempt), so lookups, inserts and LRU
  // evictions interleave constantly — the maximal-churn schedule.
  PlanCacheOptions cache_options;
  cache_options.max_bytes = 1;
  PlanCache cache(cache_options);

  constexpr size_t kThreads = 4;
  constexpr size_t kItersPerThread = 50;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ExecutorOptions options;
      options.plan_cache = &cache;
      Executor executor(&db, options);
      for (size_t i = 0; i < kItersPerThread; ++i) {
        const size_t qi = (t * 31 + i) % queries.size();
        auto lids_or = executor.DistinctLids(queries[qi], lid_attr);
        if (!lids_or.ok() || *lids_or != reference[qi]) {
          mismatches.fetch_add(1);
        }
        // Shared-lock readers racing the writer path above.
        (void)cache.stats();
        (void)cache.resident_bytes();
        (void)cache.size();
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  const PlanCache::Stats stats = cache.stats();
  // Exactly one lookup per execution, every lookup a hit or a miss.
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kItersPerThread);
  // Both shapes were inserted at least once, and the cap exempts only the
  // newest entry, so the second shape's insert must have evicted the first.
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

// Concurrent executions against an *unbounded* shared cache: exactly one
// plan per query shape should ever be planned once steady state is reached,
// and every replay must match the reference.
TEST(ConcurrencyTest, PlanCacheConcurrentSteadyStateReplays) {
  Database db = BuildPaperToyDatabase();
  const std::vector<PathQuery> queries = ToyQueries(db);
  const QAttr lid_attr{0, 0};

  Executor serial(&db);
  std::vector<std::vector<int64_t>> reference;
  for (const PathQuery& q : queries) {
    reference.push_back(UnwrapOrDie(serial.DistinctLids(q, lid_attr)));
  }

  PlanCache cache;
  constexpr size_t kThreads = 4;
  constexpr size_t kItersPerThread = 25;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ExecutorOptions options;
      options.plan_cache = &cache;
      Executor executor(&db, options);
      for (size_t i = 0; i < kItersPerThread; ++i) {
        const size_t qi = (t + i) % queries.size();
        auto lids_or = executor.DistinctLids(queries[qi], lid_attr);
        if (!lids_or.ok() || *lids_or != reference[qi]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  // No evictions without a byte cap, so the cache converges to one resident
  // plan per shape; rebinds/invalidations never fire (no appends here).
  // Once a thread has inserted a shape itself, its own next lookup of that
  // shape must hit, so hits are guaranteed despite racy first inserts.
  const PlanCache::Stats stats = cache.stats();
  EXPECT_EQ(cache.size(), queries.size());
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(stats.invalidations, 0u);
  EXPECT_EQ(stats.rebinds, 0u);
}

}  // namespace
}  // namespace eba
