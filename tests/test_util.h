// Shared test fixtures: the paper's Figure 3 toy database and helpers.

#ifndef EBA_TESTS_TEST_UTIL_H_
#define EBA_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cstdlib>
#include <utility>

#include "common/date.h"
#include "common/logging.h"
#include "log/access_log.h"
#include "storage/database.h"

namespace eba {
namespace testing_util {

/// Asserts a Status is OK with a useful failure message.
#define EBA_ASSERT_OK(expr)                                 \
  do {                                                      \
    const ::eba::Status _s = (expr);                        \
    ASSERT_TRUE(_s.ok()) << _s.ToString();                  \
  } while (0)

#define EBA_EXPECT_OK(expr)                                 \
  do {                                                      \
    const ::eba::Status _s = (expr);                        \
    EXPECT_TRUE(_s.ok()) << _s.ToString();                  \
  } while (0)

/// Unwraps a StatusOr, or records a *fatal* gtest assertion and stops the
/// test binary. A value-returning helper cannot use ASSERT_* directly (those
/// require a void context), and throwing — the previous behaviour — sends an
/// exception through unrelated stack frames where code under test may catch
/// and swallow it. Instead the fatal failure is recorded from a void lambda
/// (so gtest prints the full message and marks the test failed) and the
/// process exits: an unwrap failure means the fixture itself is broken, so
/// nothing after it can produce meaningful results.
template <typename T>
T UnwrapOrDie(StatusOr<T> s, const char* what = "StatusOr") {
  if (!s.ok()) {
    [&] { FAIL() << what << ": " << s.status().ToString(); }();
    std::exit(EXIT_FAILURE);
  }
  return std::move(s).value();
}

/// Fatal unwrap-and-assign for statement contexts:
///   EBA_ASSERT_OK_AND_ASSIGN(AccessLog log, AccessLog::Wrap(&table));
/// Unlike UnwrapOrDie this aborts only the current test (standard ASSERT
/// semantics), so prefer it in new code; it requires a void context.
#define EBA_ASSERT_OK_AND_ASSIGN(lhs, rexpr)                          \
  EBA_ASSERT_OK_AND_ASSIGN_IMPL(                                      \
      EBA_MACRO_CONCAT(_eba_test_statusor_, __LINE__), lhs, rexpr)

#define EBA_ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, rexpr)               \
  auto tmp = (rexpr);                                                 \
  ASSERT_TRUE(tmp.ok()) << #rexpr << ": " << tmp.status().ToString(); \
  lhs = std::move(tmp).value()

// Ids used in the Figure 3 toy database.
inline constexpr int64_t kAlice = 1;
inline constexpr int64_t kBob = 2;
inline constexpr int64_t kDave = 10;
inline constexpr int64_t kMike = 11;

/// Builds the example database of Figure 3:
///   Appointments(Patient, Date, Doctor): (Alice, 1/1/2010, Dave),
///                                        (Bob,   2/2/2010, Mike)
///   Doctor_Info(Doctor, Department):     (Mike, Pediatrics),
///                                        (Dave, Pediatrics)
///   Log(Lid, Date, User, Patient, Action):
///     L1 = (1, 1/1/2010, Dave, Alice), L2 = (2, 2/2/2010, Dave, Bob)
/// with a Doctor_Info.Department self-join allowance.
inline Database BuildPaperToyDatabase() {
  Database db;
  auto must = [](const Status& s) {
    EBA_CHECK_MSG(s.ok(), s.ToString());
  };
  must(db.CreateTable(TableSchema(
      "Appointments",
      {ColumnDef{"Patient", DataType::kInt64, "patient", false},
       ColumnDef{"Date", DataType::kTimestamp, "", false},
       ColumnDef{"Doctor", DataType::kInt64, "user", false}})));
  must(db.CreateTable(TableSchema(
      "Doctor_Info", {ColumnDef{"Doctor", DataType::kInt64, "user", false},
                      ColumnDef{"Department", DataType::kString, "dept",
                                false}})));
  must(db.CreateTable(AccessLog::StandardSchema("Log")));
  must(db.AllowSelfJoin(AttrId{"Doctor_Info", "Department"}));

  Table* appt = db.GetTable("Appointments").value();
  int64_t jan1 = Date::FromCivil(2010, 1, 1, 9, 0, 0).ToSeconds();
  int64_t feb2 = Date::FromCivil(2010, 2, 2, 9, 0, 0).ToSeconds();
  must(appt->AppendRow({Value::Int64(kAlice), Value::Timestamp(jan1),
                        Value::Int64(kDave)}));
  must(appt->AppendRow({Value::Int64(kBob), Value::Timestamp(feb2),
                        Value::Int64(kMike)}));

  Table* info = db.GetTable("Doctor_Info").value();
  must(info->AppendRow({Value::Int64(kMike), Value::String("Pediatrics")}));
  must(info->AppendRow({Value::Int64(kDave), Value::String("Pediatrics")}));

  Table* log = db.GetTable("Log").value();
  must(log->AppendRow({Value::Int64(1), Value::Timestamp(jan1 + 3600),
                       Value::Int64(kDave), Value::Int64(kAlice),
                       Value::String("viewed record")}));
  must(log->AppendRow({Value::Int64(2), Value::Timestamp(feb2 + 3600),
                       Value::Int64(kDave), Value::Int64(kBob),
                       Value::String("viewed record")}));
  return db;
}

/// Deep-copies a database. Differential tests run their oracle engine on
/// the clone so nothing the oracle does (index builds, stats, plan caches)
/// can leak into — or depend on — the system under test.
inline Database CloneDatabase(const Database& src) { return src.Clone(); }

}  // namespace testing_util
}  // namespace eba

#endif  // EBA_TESTS_TEST_UTIL_H_
